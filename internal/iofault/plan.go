package iofault

import (
	"fmt"
	"strconv"
	"strings"
)

// Plan is a seeded, deterministic storage-fault plan: given the same seed
// and the same sequence of mutating filesystem operations, the injector
// makes the same fault decisions. Probabilities apply per operation; the
// power cut fires after a fixed count of mutating operations.
//
// Campaigns that want exact fault replay should run with one worker
// (-jobs 1): with concurrent workers the operation order — and therefore
// which operation each decision lands on — depends on goroutine scheduling.
type Plan struct {
	// Seed drives every decision below.
	Seed uint64 `json:"seed"`
	// PErr is the probability of a hard EIO/ENOSPC on a mutating operation
	// (open, create, write, rename, remove, mkdir).
	PErr float64 `json:"perr,omitempty"`
	// PShort is the probability a write persists only a prefix of its bytes
	// and returns ENOSPC.
	PShort float64 `json:"pshort,omitempty"`
	// PSync is the probability a Sync (or SyncDir) fails. A failed file
	// Sync drops the unsynced bytes and poisons the handle with fsyncgate
	// semantics: later Syncs on it silently report success while persisting
	// nothing, and later Writes fail — so retry-and-report-success code is
	// either caught by the crash checker or fails loudly.
	PSync float64 `json:"psync,omitempty"`
	// Cut, when > 0, is the 1-based mutating-operation index at which the
	// simulated power cut fires: unsynced bytes are dropped (per CutMode),
	// non-dir-synced creates and renames are reverted, and every later
	// operation returns ErrPowerCut.
	Cut int `json:"cut,omitempty"`
	// CutMode selects what the cut does to unsynced file tails:
	// "truncate" (default) removes them, "zero" leaves them in place as
	// zero bytes (page-sized writeback lies), "torn" keeps an arbitrary
	// prefix of them (a torn write).
	CutMode string `json:"cutmode,omitempty"`
}

// Cut modes.
const (
	CutTruncate = "truncate"
	CutZero     = "zero"
	CutTorn     = "torn"
)

// ParsePlan parses the compact comma-separated key=value syntax the CLI
// -io-chaos flags use, e.g. "seed=7,perr=0.01,pshort=0.01,psync=0.02,
// cut=200,cutmode=zero". Unknown keys are errors so typos cannot silently
// disable a drill's faults.
func ParsePlan(spec string) (Plan, error) {
	p := Plan{CutMode: CutTruncate}
	if strings.TrimSpace(spec) == "" {
		return p, fmt.Errorf("iofault: empty plan spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("iofault: bad plan field %q (want key=value)", kv)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "seed":
			p.Seed, err = strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		case "perr":
			p.PErr, err = parseProb(v)
		case "pshort":
			p.PShort, err = parseProb(v)
		case "psync":
			p.PSync, err = parseProb(v)
		case "cut":
			p.Cut, err = strconv.Atoi(strings.TrimSpace(v))
		case "cutmode":
			m := strings.ToLower(strings.TrimSpace(v))
			if m != CutTruncate && m != CutZero && m != CutTorn {
				return p, fmt.Errorf("iofault: unknown cutmode %q (want truncate, zero or torn)", v)
			}
			p.CutMode = m
		default:
			return p, fmt.Errorf("iofault: unknown plan key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("iofault: bad plan value %q: %w", kv, err)
		}
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", f)
	}
	return f, nil
}

// String renders the plan in ParsePlan syntax (a canonical round-trip, for
// drill artifacts and logs).
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("perr", p.PErr)
	add("pshort", p.PShort)
	add("psync", p.PSync)
	if p.Cut > 0 {
		parts = append(parts, fmt.Sprintf("cut=%d", p.Cut))
		mode := p.CutMode
		if mode == "" {
			mode = CutTruncate
		}
		parts = append(parts, "cutmode="+mode)
	}
	return strings.Join(parts, ",")
}

// roll returns a deterministic uniform [0,1) draw for mutating-op index op
// (1-based) and a salt separating independent decisions on the same op.
func (p Plan) roll(op int, salt uint64) float64 {
	x := splitmix64(p.Seed ^ (uint64(op) * 0x9e3779b97f4a7c15) ^ (salt * 0xbf58476d1ce4e5b9))
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 is the standard 64-bit mixer: tiny, stateless, and plenty for
// fault placement.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
