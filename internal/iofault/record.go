package iofault

import (
	"crypto/sha256"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The crash-consistency checker: a Recorder captures the exact operation
// trace a durable layer performs, and CrashStates expands that trace into
// every on-disk state a power cut could have left — one set of states per
// operation boundary, times the writeback ambiguities the kernel is allowed
// (unsynced data absent, torn, zeroed, or fully flushed; unsynced renames
// undone or committed). Tests materialize each state into a directory, run
// the layer's recovery, and assert the two invariants:
//
//  1. nothing acknowledged before the cut is lost, and
//  2. no unacknowledged partial state survives the heal.
//
// Acknowledgement points are marked on the trace with Recorder.Note.

// OpKind enumerates recorded operations.
type OpKind uint8

// Operation kinds, in the order the durable layers use them.
const (
	OpOpen OpKind = iota
	OpCreateTemp
	OpWrite
	OpTruncate
	OpSync
	OpClose
	OpRename
	OpRemove
	OpMkdir
	OpSyncDir
	OpNote
)

var opNames = [...]string{
	"open", "createtemp", "write", "truncate", "sync", "close",
	"rename", "remove", "mkdir", "syncdir", "note",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one recorded filesystem operation. Paths are relative to the
// recorder's root so states can be materialized anywhere.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename target
	Note  string
	Flag  int    // open flags
	Data  []byte // write payload
	Off   int64  // write offset
	Size  int64  // truncate size
}

// Recorder is an FS that passes every operation through to the real
// filesystem under Root while recording the trace CrashStates replays.
type Recorder struct {
	root string

	mu   sync.Mutex
	ops  []Op
	errs []error
}

// NewRecorder records operations under root (typically a test temp dir).
func NewRecorder(root string) *Recorder {
	return &Recorder{root: filepath.Clean(root)}
}

// Note marks an application-level acknowledgement point on the trace (for
// example "append 3 acked", "put job-X acked"). Crash states report which
// notes precede the cut, so tests know what the layer had promised by then.
func (r *Recorder) Note(label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, Op{Kind: OpNote, Note: label})
}

// Trace returns the recorded operations.
func (r *Recorder) Trace() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

func (r *Recorder) rel(path string) string {
	rel, err := filepath.Rel(r.root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

func (r *Recorder) record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// recFile wraps an open file, tracking the cursor so writes are recorded
// with their absolute offset.
type recFile struct {
	r      *Recorder
	f      File
	path   string // relative
	cursor int64
}

func (r *Recorder) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := Real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	var size int64
	if of, ok := f.(*os.File); ok {
		if st, serr := of.Stat(); serr == nil {
			size = st.Size()
		}
	}
	rel := r.rel(name)
	r.record(Op{Kind: OpOpen, Path: rel, Flag: flag})
	cursor := int64(0)
	if flag&os.O_APPEND != 0 {
		cursor = size
	}
	return &recFile{r: r, f: f, path: rel, cursor: cursor}, nil
}

func (r *Recorder) CreateTemp(dir, pattern string) (File, error) {
	f, err := Real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	rel := r.rel(f.Name())
	r.record(Op{Kind: OpCreateTemp, Path: rel})
	return &recFile{r: r, f: f, path: rel}, nil
}

func (f *recFile) Name() string { return f.f.Name() }

func (f *recFile) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	if n > 0 {
		f.r.record(Op{Kind: OpWrite, Path: f.path, Data: append([]byte(nil), p[:n]...), Off: f.cursor})
		f.cursor += int64(n)
	}
	return n, err
}

func (f *recFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.f.Seek(offset, whence)
	if err == nil {
		f.cursor = pos
	}
	return pos, err
}

func (f *recFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.r.record(Op{Kind: OpTruncate, Path: f.path, Size: size})
	return nil
}

func (f *recFile) Sync() error {
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.r.record(Op{Kind: OpSync, Path: f.path})
	return nil
}

func (f *recFile) Close() error {
	err := f.f.Close()
	f.r.record(Op{Kind: OpClose, Path: f.path})
	return err
}

func (r *Recorder) Rename(oldpath, newpath string) error {
	if err := Real.Rename(oldpath, newpath); err != nil {
		return err
	}
	r.record(Op{Kind: OpRename, Path: r.rel(oldpath), Path2: r.rel(newpath)})
	return nil
}

func (r *Recorder) Remove(name string) error {
	if err := Real.Remove(name); err != nil {
		return err
	}
	r.record(Op{Kind: OpRemove, Path: r.rel(name)})
	return nil
}

func (r *Recorder) MkdirAll(path string, perm fs.FileMode) error {
	if err := Real.MkdirAll(path, perm); err != nil {
		return err
	}
	r.record(Op{Kind: OpMkdir, Path: r.rel(path)})
	return nil
}

func (r *Recorder) ReadFile(name string) ([]byte, error)       { return Real.ReadFile(name) }
func (r *Recorder) ReadDir(name string) ([]fs.DirEntry, error) { return Real.ReadDir(name) }

func (r *Recorder) SyncDir(dir string) error {
	if err := Real.SyncDir(dir); err != nil {
		return err
	}
	r.record(Op{Kind: OpSyncDir, Path: r.rel(dir)})
	return nil
}

// CrashState is one on-disk state a power cut could have left: the durable
// files (relative path to content) and the acknowledgement notes that had
// been issued before the cut.
type CrashState struct {
	// Desc locates the state: the op index the cut follows and the
	// writeback variant.
	Desc string
	// Cut is the number of trace operations that happened before the cut.
	Cut int
	// Acked lists the Note labels recorded before the cut.
	Acked []string
	// Files is the durable filesystem image, relative path -> content.
	Files map[string][]byte
}

// Materialize writes the state's files under dir.
func (s CrashState) Materialize(dir string) error {
	for rel, data := range s.Files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// mfile is the volatile/durable split of one file during replay.
type mfile struct {
	data    []byte // volatile content (what the process wrote)
	durable []byte // content as of the last successful fsync
}

// fsModel replays a trace, maintaining the volatile namespace (what the
// process sees), the durable namespace (names whose create/rename/remove
// was dir-synced) and each file's synced content.
type fsModel struct {
	vis     map[string]*mfile
	dur     map[string]*mfile
	pending []pendOp
}

type pendOp struct {
	dir   string
	apply func(dur map[string]*mfile)
}

func newFSModel() *fsModel {
	return &fsModel{vis: make(map[string]*mfile), dur: make(map[string]*mfile)}
}

func (m *fsModel) apply(op Op) {
	switch op.Kind {
	case OpOpen:
		f := m.vis[op.Path]
		if f == nil {
			f = &mfile{}
			m.vis[op.Path] = f
			if _, ok := m.dur[op.Path]; !ok {
				path := op.Path
				m.pending = append(m.pending, pendOp{
					dir:   filepath.Dir(path),
					apply: func(dur map[string]*mfile) { dur[path] = f },
				})
			}
		}
		if op.Flag&os.O_TRUNC != 0 {
			f.data = nil
		}
	case OpCreateTemp:
		f := &mfile{}
		m.vis[op.Path] = f
		path := op.Path
		m.pending = append(m.pending, pendOp{
			dir:   filepath.Dir(path),
			apply: func(dur map[string]*mfile) { dur[path] = f },
		})
	case OpWrite:
		f := m.vis[op.Path]
		if f == nil {
			return
		}
		end := op.Off + int64(len(op.Data))
		if int64(len(f.data)) < end {
			grown := make([]byte, end)
			copy(grown, f.data)
			f.data = grown
		}
		copy(f.data[op.Off:end], op.Data)
	case OpTruncate:
		f := m.vis[op.Path]
		if f == nil {
			return
		}
		if int64(len(f.data)) > op.Size {
			f.data = append([]byte(nil), f.data[:op.Size]...)
		} else {
			grown := make([]byte, op.Size)
			copy(grown, f.data)
			f.data = grown
		}
	case OpSync:
		if f := m.vis[op.Path]; f != nil {
			f.durable = append([]byte(nil), f.data...)
		}
	case OpRename:
		f := m.vis[op.Path]
		if f == nil {
			return
		}
		delete(m.vis, op.Path)
		m.vis[op.Path2] = f
		from, to := op.Path, op.Path2
		m.pending = append(m.pending, pendOp{
			dir: filepath.Dir(to),
			apply: func(dur map[string]*mfile) {
				delete(dur, from)
				dur[to] = f
			},
		})
	case OpRemove:
		delete(m.vis, op.Path)
		path := op.Path
		m.pending = append(m.pending, pendOp{
			dir:   filepath.Dir(path),
			apply: func(dur map[string]*mfile) { delete(dur, path) },
		})
	case OpSyncDir:
		kept := m.pending[:0]
		for _, p := range m.pending {
			if p.dir == op.Path {
				p.apply(m.dur)
			} else {
				kept = append(kept, p)
			}
		}
		m.pending = append([]pendOp(nil), kept...)
	}
}

// states returns the crash states possible at the current replay point.
func (m *fsModel) states(cut int, acked []string) []CrashState {
	// The durable namespace with pending dir ops committed (metadata
	// journaling often persists namespace changes ahead of data).
	lax := make(map[string]*mfile, len(m.dur))
	for k, v := range m.dur {
		lax[k] = v
	}
	for _, p := range m.pending {
		p.apply(lax)
	}
	snap := func(ns map[string]*mfile, content func(*mfile) []byte) map[string][]byte {
		files := make(map[string][]byte, len(ns))
		for name, f := range ns {
			files[name] = append([]byte(nil), content(f)...)
		}
		return files
	}
	durableOnly := func(f *mfile) []byte { return f.durable }
	torn := func(f *mfile) []byte {
		if len(f.data) > len(f.durable) {
			keep := len(f.durable) + (len(f.data)-len(f.durable))/2
			return f.data[:keep]
		}
		return f.durable
	}
	zeroed := func(f *mfile) []byte {
		if len(f.data) > len(f.durable) {
			out := make([]byte, len(f.data))
			copy(out, f.durable)
			return out
		}
		return f.durable
	}
	flushed := func(f *mfile) []byte { return f.data }

	mk := func(variant string, files map[string][]byte) CrashState {
		return CrashState{
			Desc:  fmt.Sprintf("cut after op %d, %s", cut, variant),
			Cut:   cut,
			Acked: append([]string(nil), acked...),
			Files: files,
		}
	}
	return []CrashState{
		mk("strict (synced data, synced namespace)", snap(m.dur, durableOnly)),
		mk("lax (synced data, full namespace)", snap(lax, durableOnly)),
		mk("torn (half-flushed tails, synced namespace)", snap(m.dur, torn)),
		mk("zeroed (zero tails, synced namespace)", snap(m.dur, zeroed)),
		mk("flushed (all data, full namespace)", snap(lax, flushed)),
	}
}

// CrashStates expands a recorded trace into every distinct durable state a
// power cut could have left: five writeback variants per operation
// boundary, deduplicated across boundaries.
func CrashStates(trace []Op) []CrashState {
	m := newFSModel()
	seen := make(map[string]bool)
	var out []CrashState
	var acked []string
	emit := func(cut int) {
		for _, s := range m.states(cut, acked) {
			if fp := fingerprint(s); !seen[fp] {
				seen[fp] = true
				out = append(out, s)
			}
		}
	}
	emit(0)
	for i, op := range trace {
		if op.Kind == OpNote {
			acked = append(acked, op.Note)
		} else {
			m.apply(op)
		}
		emit(i + 1)
	}
	return out
}

// fingerprint hashes a state's files and ack set for deduplication.
func fingerprint(s CrashState) string {
	h := sha256.New()
	names := make([]string, 0, len(s.Files))
	for name := range s.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%s=%d:", name, len(s.Files[name]))
		h.Write(s.Files[name])
	}
	fmt.Fprintf(h, "|acked=%d", len(s.Acked))
	return string(h.Sum(nil))
}

// ForEachCrashState materializes every crash state of trace into a fresh
// subdirectory of scratch and calls fn with it. The first error is returned
// wrapped with the state's description, so a failing state is identifiable.
func ForEachCrashState(trace []Op, scratch string, fn func(s CrashState, dir string) error) error {
	for i, s := range CrashStates(trace) {
		dir := filepath.Join(scratch, fmt.Sprintf("state%04d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := s.Materialize(dir); err != nil {
			return fmt.Errorf("materialize %s: %w", s.Desc, err)
		}
		if err := fn(s, dir); err != nil {
			return fmt.Errorf("%s: %w", s.Desc, err)
		}
	}
	return nil
}
