// Package iofault is the storage seam every durable path writes through:
// an interface over the handful of filesystem operations crash consistency
// depends on (create, open, write, sync, close, rename, dir-sync), a
// production implementation backed by the operating system, a deterministic
// seeded fault injector (EIO/ENOSPC, short writes, fsyncgate-poisoned
// syncs, power cuts that drop unsynced bytes), and a recorder whose op
// traces a crash-consistency checker expands into every durable state a
// power cut could have left behind.
//
// The durability contract the rest of the repo builds on:
//
//   - file data is durable only after a successful Sync on that file;
//   - a create or rename is durable only after a successful SyncDir on the
//     containing directory (fsync of the file does not persist its name);
//   - after a failed Sync the file handle is poisoned: the unsynced data
//     must be considered lost, and retrying the sync must never be treated
//     as making it durable (the fsyncgate rule).
package iofault

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the writable-file seam. It is the subset of *os.File the durable
// layers (journal, cache, checkpoints, exporters) actually use.
type File interface {
	io.Writer
	// Name returns the path the file was opened with.
	Name() string
	// Seek positions the write cursor (the journal seeks to the end after
	// truncating a torn tail).
	Seek(offset int64, whence int) (int64, error)
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Sync flushes written data to stable storage. Durability begins here.
	Sync() error
	// Close releases the handle. Close does NOT imply durability.
	Close() error
}

// FS is the filesystem seam. Every mutating operation a durable path
// performs goes through one of these methods so tests and drills can
// substitute a fault-injecting implementation.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a fresh temp file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath. The rename is not
	// durable until SyncDir succeeds on the containing directory.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making prior creates, renames
	// and removes inside it durable. Errors are meaningful: an unsynced
	// rename is not durable and callers must not report success past one.
	SyncDir(dir string) error
}

// osFS is the production implementation: the real operating system.
type osFS struct{}

// Real is the production FS. It is the default everywhere a nil or omitted
// FS would otherwise appear.
var Real FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync it, rename it over path, fsync the directory. A
// crash at any point leaves either the old file or the complete new one,
// never a torn mix, and the rename is only reported durable after the
// directory sync succeeds.
func WriteFileAtomic(fsys FS, path string, data []byte, perm fs.FileMode) error {
	if fsys == nil {
		fsys = Real
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(name)
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		fsys.Remove(name)
		return err
	}
	return fsys.SyncDir(dir)
}
