package workload

import "repro/internal/rng"

// FuzzProfile derives a small random-but-valid profile from the given
// stream, spanning the whole parameter space the generators accept: dense
// and sparse writes, any privatization weight, early or late write phases,
// balanced through heavy-tailed task lengths, and dependence intensities
// from none to squash storms. The chaos test suite and the tlschaos fault
// campaigns both draw their workloads from here: the fixed app profiles
// exercise the paper's corners, fuzz profiles everything in between.
func FuzzProfile(r *rng.Source) Profile {
	p := Profile{
		Name:           "chaos",
		Tasks:          20 + r.Intn(60),
		InstrPerTask:   500 + r.Intn(4000),
		FootprintBytes: 64 + r.Intn(2048),
		WriteDensity:   1 + r.Intn(16),
		PrivFrac:       r.Float64(),
		WritePhase:     0.1 + 0.9*r.Float64(),
		ImbalanceCV:    r.Float64() * 1.5,
		ReadsPerWrite:  r.Float64() * 3,
		SharedReadFrac: r.Float64(),
		HotReadWords:   256 << r.Intn(5),
		DepProb:        r.Float64() * 0.5,
		DepReach:       1 + r.Intn(16),
		PackedChannels: r.Bool(0.3),
	}
	if r.Bool(0.3) {
		p.HeavyTailFrac = 0.02 + r.Float64()*0.1
		p.HeavyTailMax = 10 + r.Float64()*80
	}
	if r.Bool(0.4) {
		p.TasksPerInvoc = 4 + r.Intn(16)
	}
	return p
}
