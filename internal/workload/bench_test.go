package workload

import "testing"

func BenchmarkTaskGeneration(b *testing.B) {
	g := NewGenerator(StandardScale(Bdna()), 1)
	var buf []Op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = g.Task(i%g.NumTasks(), buf[:0])
	}
}
