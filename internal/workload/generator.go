package workload

import (
	"slices"

	"repro/internal/memsys"
	"repro/internal/rng"
)

// OpKind is the kind of one task operation.
type OpKind uint8

const (
	// OpCompute executes Instr instructions with no memory access.
	OpCompute OpKind = iota
	// OpRead loads one word.
	OpRead
	// OpWrite stores one word.
	OpWrite
)

// Op is one operation of a task's dynamic stream.
type Op struct {
	Kind  OpKind
	Addr  memsys.Addr
	Instr int // instructions in this compute chunk (OpCompute only)
}

// Address-space layout (word addresses). The regions are far apart so they
// can never alias.
const (
	// SharedBase is the read-only shared region: data written before the
	// speculative section (architectural state).
	SharedBase memsys.Addr = 0

	// sharedWords sizes the read-only region at 64 KB: a hot read set that
	// becomes cache-resident after warm-up (real numerical loops re-read a
	// bounded working set), leaving the version traffic and cold footprint
	// as the memory-system load.
	sharedWords = 1 << 14

	// PrivBase is the mostly-privatization region: every task writes its own
	// version of these same variables (the work(k) pattern of Figure 1-(b)).
	PrivBase memsys.Addr = 1 << 24

	// UniqueBase is the pool of task-private regions. A region is reused by
	// tasks regionPool apart — never concurrently — which bounds the address
	// space without creating cross-task reads.
	UniqueBase memsys.Addr = 1 << 26

	// regionPool is the number of distinct task-private regions.
	regionPool = 96
	// regionStride is the size of one task-private region, in words. It is
	// deliberately NOT a power of two: a power-of-two stride would start
	// every region at cache set 0 and alias the regions of all concurrent
	// tasks onto the same few sets — an artifact real array bases do not
	// have. 66064 words = 4129 lines, odd, hence coprime with any
	// power-of-two set count.
	regionStride = 1<<16 + 528

	// CommBase is the communication region: the words through which tasks
	// occasionally read their predecessors' results — the source of
	// cross-task RAW dependences and, when out of order, squashes.
	CommBase memsys.Addr = 1 << 28

	// commChannels is the number of communication words.
	commChannels = 64
)

// Generator produces the deterministic operation stream of each task of a
// profile. The stream of task i is a pure function of (profile, seed, i),
// so a squashed task re-executes the identical stream.
type Generator struct {
	prof Profile
	seed uint64

	privLines   int
	uniqueLines int
}

// NewGenerator returns a generator for the profile. It panics if the
// profile fails validation: generating from a malformed profile is a
// programming error.
func NewGenerator(prof Profile, seed uint64) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	lines := prof.LinesWritten()
	priv := int(float64(lines)*prof.PrivFrac + 0.5)
	if priv > lines {
		priv = lines
	}
	return &Generator{
		prof:        prof,
		seed:        seed,
		privLines:   priv,
		uniqueLines: lines - priv,
	}
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// ConcurrentTaskSafe reports that Task may be called from multiple
// goroutines at once: the stream of task i is a pure function of
// (profile, seed, i) and the generator's fields are immutable after
// construction. The parallel simulator's prefetch workers rely on this.
func (g *Generator) ConcurrentTaskSafe() bool { return true }

// Name returns the application name.
func (g *Generator) Name() string { return g.prof.Name }

// NumTasks returns the number of tasks in the section.
func (g *Generator) NumTasks() int { return g.prof.Tasks }

// TasksPerInvocation returns the invocation granularity (0 = one
// invocation).
func (g *Generator) TasksPerInvocation() int { return g.prof.TasksPerInvoc }

// channelAddr returns the communication word of task index. Channels
// occupy one line each by default; packed layouts put 16 per line (false
// sharing, for the conflict-granularity ablation).
func (g *Generator) channelAddr(index int) memsys.Addr {
	if g.prof.PackedChannels {
		return CommBase + memsys.Addr(index%commChannels)
	}
	return CommBase + memsys.Addr(index%commChannels)*memsys.WordsPerLine
}

// timed pairs an operation with its fractional position in the task.
type timed struct {
	pos  float64
	seq  int
	kind OpKind
	addr memsys.Addr
}

// LengthMultiplier returns the deterministic task-length multiplier of task
// index (mean ~1). It is exposed so tests can verify the imbalance model.
func (g *Generator) LengthMultiplier(index int) float64 {
	r := rng.New(g.seed ^ 0x1eaf<<32 ^ uint64(index)*0x9e3779b97f4a7c15)
	if g.prof.HeavyTailFrac > 0 && r.Bool(g.prof.HeavyTailFrac) {
		return r.Pareto(g.prof.HeavyTailMax/4, g.prof.HeavyTailMax, 1.2)
	}
	if g.prof.ImbalanceCV <= 0 {
		return 1
	}
	return r.LogNormalCV(1, g.prof.ImbalanceCV)
}

// Task generates the operation stream of task index (0-based), appending
// into buf to avoid allocation, and returns the stream and its total
// instruction count. Streams interleave compute chunks with the memory
// operations of the profile: versioned writes (privatized and task-private
// lines), re-reads of own data, scattered shared reads, and occasional
// cross-task communication.
func (g *Generator) Task(index int, buf []Op) (ops []Op, instr int) {
	p := &g.prof
	r := rng.New(g.seed ^ uint64(index)*0x9e3779b97f4a7c15)
	mul := g.LengthMultiplier(index)
	instr = int(float64(p.InstrPerTask) * mul)
	if instr < 1 {
		instr = 1
	}

	density := p.WriteDensity
	var mem []timed
	add := func(pos float64, kind OpKind, addr memsys.Addr) {
		mem = append(mem, timed{pos: pos, seq: len(mem), kind: kind, addr: addr})
	}

	// Writes, spread over the first WritePhase of the task. Privatized lines
	// are the same addresses for every task; private lines live in the
	// task's pooled region. The pattern is MOSTLY privatization: with
	// probability PrivFrac a task writes the shared-name variables (creating
	// its own version of them); otherwise its whole footprint is private.
	privLines := g.privLines
	if privLines > 0 && !r.Bool(p.PrivFrac) {
		privLines = 0
	}
	uniqueLines := g.privLines + g.uniqueLines - privLines
	region := memsys.Addr(index%regionPool) * regionStride
	var written []memsys.Addr
	writeLine := func(base memsys.Addr, line, k int) {
		la := (base + memsys.Addr(line*memsys.WordsPerLine)).Line()
		for w := 0; w < density; w++ {
			pos := p.WritePhase * (float64(k) + r.Float64()) / float64(privLines+uniqueLines)
			a := la.Word(w)
			add(pos, OpWrite, a)
			written = append(written, a)
		}
	}
	for i := 0; i < privLines; i++ {
		writeLine(PrivBase, i, i)
	}
	for i := 0; i < uniqueLines; i++ {
		writeLine(UniqueBase+region, i, privLines+i)
	}

	// Reads: re-reads of own writes late in the task, scattered shared
	// reads throughout.
	totalReads := int(p.ReadsPerWrite*float64(len(written)) + 0.5)
	sharedReads := int(float64(totalReads) * p.SharedReadFrac)
	ownReads := totalReads - sharedReads
	for i := 0; i < ownReads && len(written) > 0; i++ {
		a := written[r.Intn(len(written))]
		// Own values are consumed after the write phase.
		add(p.WritePhase+(1-p.WritePhase)*r.Float64(), OpRead, a)
	}
	hot := p.HotReadWords
	if hot <= 0 {
		hot = sharedWords
	}
	for i := 0; i < sharedReads; i++ {
		add(r.Float64(), OpRead, SharedBase+memsys.Addr(r.Intn(hot)))
	}

	// Cross-task communication: every task publishes into its channel near
	// its end; with probability DepProb it consumes a recent predecessor's
	// channel near its start — the out-of-order RAW candidate. Channels live
	// one per line so that communication does not create artificial
	// same-line version conflicts.
	add(0.97, OpWrite, g.channelAddr(index))
	if p.DepProb > 0 && index > 0 && r.Bool(p.DepProb) {
		delta := 1 + r.Intn(p.DepReach)
		if delta > index {
			delta = index
		}
		add(0.03, OpRead, g.channelAddr(index-delta))
	}

	// Sort by position (stable by construction sequence) and interleave
	// compute chunks proportional to the gaps. (pos, seq) is a strict total
	// order — seq is unique — so the unstable slices sort produces the exact
	// sequence the reflection-based sort.Slice did, without its closure and
	// interface costs on what profiling shows is the hottest single call in
	// a full run.
	slices.SortFunc(mem, func(a, b timed) int {
		switch {
		case a.pos < b.pos:
			return -1
		case a.pos > b.pos:
			return 1
		default:
			return a.seq - b.seq
		}
	})

	ops = buf[:0]
	emitted := 0
	prev := 0.0
	for _, m := range mem {
		chunk := int(float64(instr) * (m.pos - prev))
		if chunk > 0 {
			ops = append(ops, Op{Kind: OpCompute, Instr: chunk})
			emitted += chunk
		}
		prev = m.pos
		ops = append(ops, Op{Kind: m.kind, Addr: m.addr})
	}
	if rest := instr - emitted; rest > 0 {
		ops = append(ops, Op{Kind: OpCompute, Instr: rest})
	}
	return ops, instr
}

// SequentialOrderOracle returns, for testing, the producer task index that
// a read of addr by task index must observe under sequential semantics
// given this generator's write pattern, or -1 for architectural data. Only
// meaningful for privatized and communication addresses (task-private
// regions are written and read by the same task).
func (g *Generator) SequentialOrderOracle(addr memsys.Addr, index int) int {
	switch {
	case addr >= CommBase:
		ch := int(addr - CommBase)
		if !g.prof.PackedChannels {
			ch /= memsys.WordsPerLine
		}
		// The latest predecessor writing channel ch. The task's own channel
		// write happens after its channel read in program order, so the
		// producer is strictly before index.
		for t := index - 1; t >= 0; t-- {
			if t%commChannels == ch {
				return t
			}
		}
		return -1
	default:
		return -1
	}
}
