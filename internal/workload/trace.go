package workload

import (
	"fmt"

	"repro/internal/memsys"
)

// Trace is an explicit workload: the caller supplies each task's operation
// stream directly instead of synthesizing one from a Profile. It lets a
// downstream user run their own access patterns — a kernel sketch, a
// recorded address trace, a hand-built dependence structure — through the
// buffering schemes.
//
// Task streams must respect the simulator's conventions: a task has at
// most one version of any word (repeated writes to the same word are
// idempotent versioning-wise), and streams are immutable once built (a
// squashed task re-executes the same stream).
type Trace struct {
	name          string
	tasks         [][]Op
	tasksPerInvoc int
	instr         []int
}

// NewTrace builds an explicit workload from per-task operation streams.
// tasksPerInvoc of 0 means a single invocation. It panics on an empty task
// list or a task with no operations: an explicit trace with nothing to run
// is a construction error.
func NewTrace(name string, tasks [][]Op, tasksPerInvoc int) *Trace {
	if name == "" {
		name = "trace"
	}
	if len(tasks) == 0 {
		panic("workload: empty trace")
	}
	t := &Trace{name: name, tasksPerInvoc: tasksPerInvoc, instr: make([]int, len(tasks))}
	for i, ops := range tasks {
		if len(ops) == 0 {
			panic(fmt.Sprintf("workload: trace task %d has no operations", i))
		}
		n := 0
		for _, op := range ops {
			if op.Kind == OpCompute {
				n += op.Instr
			}
		}
		if n == 0 {
			// The simulator needs at least one instruction of work per task
			// (zero-length tasks would commit at time zero en masse).
			n = 1
			ops = append([]Op{{Kind: OpCompute, Instr: 1}}, ops...)
		}
		t.tasks = append(t.tasks, ops)
		t.instr[i] = n
	}
	return t
}

// Name implements the simulator's workload interface.
func (t *Trace) Name() string { return t.name }

// NumTasks implements the simulator's workload interface.
func (t *Trace) NumTasks() int { return len(t.tasks) }

// TasksPerInvocation implements the simulator's workload interface.
func (t *Trace) TasksPerInvocation() int { return t.tasksPerInvoc }

// Task returns task index's stream. The stored stream is returned directly
// (the simulator treats it as read-only); buf is ignored.
func (t *Trace) Task(index int, buf []Op) ([]Op, int) {
	_ = buf
	return t.tasks[index], t.instr[index]
}

// ConcurrentTaskSafe reports that Task may be called from multiple
// goroutines at once: the streams are immutable once built and Task only
// reads them. The returned slices are shared — callers must never recycle
// them into a scratch buffer — which the parallel simulator respects by
// disabling per-processor stream-buffer reuse in parallel mode.
func (t *Trace) ConcurrentTaskSafe() bool { return true }

// TraceBuilder accumulates one task's operations fluently.
type TraceBuilder struct {
	ops []Op
}

// Compute appends n instructions of computation.
func (b *TraceBuilder) Compute(n int) *TraceBuilder {
	if n > 0 {
		b.ops = append(b.ops, Op{Kind: OpCompute, Instr: n})
	}
	return b
}

// Read appends a load of the given word address.
func (b *TraceBuilder) Read(addr memsys.Addr) *TraceBuilder {
	b.ops = append(b.ops, Op{Kind: OpRead, Addr: addr})
	return b
}

// Write appends a store to the given word address.
func (b *TraceBuilder) Write(addr memsys.Addr) *TraceBuilder {
	b.ops = append(b.ops, Op{Kind: OpWrite, Addr: addr})
	return b
}

// Ops returns the accumulated stream.
func (b *TraceBuilder) Ops() []Op { return b.ops }
