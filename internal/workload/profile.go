// Package workload models the speculatively-parallelized loops of the seven
// numerical applications of the paper's evaluation (Section 4.2, Table 3,
// Figure 1) as synthetic, deterministic task generators.
//
// We do not have the original Fortran codes or the Polaris compiler, so
// each application is characterized by the published per-task parameters —
// instructions per task, written footprint and its density, the fraction of
// the footprint with mostly-privatization behaviour, load imbalance,
// cross-task dependence (squash) intensity, and shared-read traffic — and a
// generator reproduces an access stream with those characteristics. The
// buffering results of the paper are explained entirely by these
// characteristics (Sections 2.2 and 5), which is what makes the
// substitution sound; EXPERIMENTS.md records measured-vs-paper values.
package workload

import (
	"fmt"

	"repro/internal/memsys"
)

// Level is a qualitative magnitude used by Table 3's last columns.
type Level uint8

const (
	// Low magnitude.
	Low Level = iota
	// Med is the paper's "Medium".
	Med
	// High magnitude.
	High
	// HighMed is the paper's "High-Med".
	HighMed
)

func (l Level) String() string {
	switch l {
	case Low:
		return "Low"
	case Med:
		return "Med"
	case High:
		return "High"
	case HighMed:
		return "High-Med"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Profile describes one application's non-analyzable section.
type Profile struct {
	Name string

	// Tasks is the number of speculative tasks in the (scaled) section.
	Tasks int

	// TasksPerInvoc bounds how many tasks one invocation of the loop
	// contains (0 = a single invocation). The non-analyzable loops are
	// invoked repeatedly (Table 3's "# Invoc; # Tasks per Invoc"), and
	// speculation does not cross the enclosing barriers, which is what
	// keeps the number of co-existing speculative tasks at the 17-29 of
	// Figure 1 for most applications (P3m's single long loop is the
	// exception — 800 co-existing tasks).
	TasksPerInvoc int

	// InstrPerTask is the mean instruction count per task.
	InstrPerTask int

	// FootprintBytes is the mean written footprint per task (Figure 1).
	FootprintBytes int

	// WriteDensity is how many distinct words of each written line a task
	// writes (1 = fully sparse, 16 = dense array writes). Calibrated so the
	// Commit/Execution ratios land near Table 3.
	WriteDensity int

	// PrivFrac is the fraction of the written footprint with
	// mostly-privatization behaviour: every task creates its own version of
	// the same variables (Figure 1's "Priv (%)").
	PrivFrac float64

	// WritePhase is the fraction of the task over which writes are spread
	// from the start. Privatization applications write their privatized
	// variables "early in their execution" (Section 5.1), which is what
	// makes MultiT&SV stall immediately.
	WritePhase float64

	// ImbalanceCV is the coefficient of variation of the task-length
	// distribution (log-normal).
	ImbalanceCV float64

	// HeavyTailFrac, when positive, makes that fraction of tasks extremely
	// long (bounded-Pareto multiplier). P3m's high imbalance — hundreds of
	// speculative tasks buffered behind one long task (Figure 1's 800 tasks
	// in system) — comes from this.
	HeavyTailFrac float64
	// HeavyTailMax is the maximum length multiplier of a heavy task.
	HeavyTailMax float64

	// ReadsPerWrite is the number of reads issued per written word.
	ReadsPerWrite float64
	// SharedReadFrac is the fraction of reads that go to the read-only
	// shared region (the rest re-read the task's own writes).
	SharedReadFrac float64
	// HotReadWords sizes the application's read-only working set in words
	// (0 selects the 16K-word default). Applications with few reads per
	// task have correspondingly smaller hot sets; otherwise cold first
	// touches would dominate their memory time.
	HotReadWords int

	// DepProb is the probability that a task reads a communication word
	// recently written by a predecessor — the source of out-of-order RAWs.
	DepProb float64
	// DepReach is how many tasks back the dependence reaches (uniform in
	// [1, DepReach]).
	DepReach int

	// PackedChannels packs the communication words 16 to a cache line
	// instead of one per line. True dependences are unchanged, but tasks
	// now write different words of shared lines — false sharing that only
	// line-granularity conflict detection turns into squashes. Used by the
	// conflict-granularity ablation.
	PackedChannels bool

	// Reporting metadata (Table 3).
	PctTseq       float64 // weight of the section relative to Tseq
	QualImbalance Level
	QualPriv      Level
	QualCommit    Level
	PaperCENuma   float64 // Commit/Execution ratio (%) reported for NUMA
	PaperCECmp    float64 // Commit/Execution ratio (%) reported for CMP
	PaperSquash   float64 // squashes per committed task reported in §4.2
}

// WordsWritten returns the written footprint in words.
func (p *Profile) WordsWritten() int { return p.FootprintBytes / memsys.WordBytes }

// LinesWritten returns the number of distinct lines the footprint touches
// given the write density.
func (p *Profile) LinesWritten() int {
	d := p.WriteDensity
	if d <= 0 {
		d = 1
	}
	if d > memsys.WordsPerLine {
		d = memsys.WordsPerLine
	}
	n := (p.WordsWritten() + d - 1) / d
	if n < 1 {
		n = 1
	}
	return n
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without name")
	case p.Tasks <= 0:
		return fmt.Errorf("workload %s: no tasks", p.Name)
	case p.InstrPerTask <= 0:
		return fmt.Errorf("workload %s: no instructions", p.Name)
	case p.FootprintBytes < memsys.WordBytes:
		return fmt.Errorf("workload %s: empty footprint", p.Name)
	case p.WriteDensity < 1 || p.WriteDensity > memsys.WordsPerLine:
		return fmt.Errorf("workload %s: write density %d out of [1,16]", p.Name, p.WriteDensity)
	case p.PrivFrac < 0 || p.PrivFrac > 1:
		return fmt.Errorf("workload %s: priv fraction %v out of [0,1]", p.Name, p.PrivFrac)
	case p.WritePhase <= 0 || p.WritePhase > 1:
		return fmt.Errorf("workload %s: write phase %v out of (0,1]", p.Name, p.WritePhase)
	case p.SharedReadFrac < 0 || p.SharedReadFrac > 1:
		return fmt.Errorf("workload %s: shared read fraction out of [0,1]", p.Name)
	case p.DepProb < 0 || p.DepProb > 1:
		return fmt.Errorf("workload %s: dependence probability out of [0,1]", p.Name)
	case p.DepProb > 0 && p.DepReach < 1:
		return fmt.Errorf("workload %s: dependence reach must be positive", p.Name)
	case p.TasksPerInvoc < 0:
		return fmt.Errorf("workload %s: negative tasks per invocation", p.Name)
	}
	return nil
}

// Scale returns a copy of p with task count, instructions, and footprint
// scaled by the given factors (simulation-time control; 1 keeps the paper's
// full-size parameters).
func (p Profile) Scale(tasks, instr, footprint float64) Profile {
	s := p
	s.Tasks = max(1, int(float64(p.Tasks)*tasks))
	s.InstrPerTask = max(1, int(float64(p.InstrPerTask)*instr))
	s.FootprintBytes = max(memsys.WordBytes, int(float64(p.FootprintBytes)*footprint))
	return s
}

// Rechunk returns a copy of p with the iteration-chunking changed by the
// given factor: factor 2 halves the task count and doubles each task
// (instructions and footprint), preserving the total work. The evaluation
// fixed per-application chunk sizes (1-32 consecutive iterations); Rechunk
// supports sweeping that choice — bigger chunks amortize dispatch and
// commit overheads but worsen load balance and deepen squash damage.
func (p Profile) Rechunk(factor float64) Profile {
	if factor <= 0 {
		return p
	}
	s := p
	s.Tasks = max(1, int(float64(p.Tasks)/factor+0.5))
	s.InstrPerTask = max(1, int(float64(p.InstrPerTask)*factor+0.5))
	s.FootprintBytes = max(4, int(float64(p.FootprintBytes)*factor+0.5))
	if p.TasksPerInvoc > 0 {
		s.TasksPerInvoc = max(1, int(float64(p.TasksPerInvoc)/factor+0.5))
	}
	// Dependence reach is measured in tasks: bigger chunks shorten it.
	if p.DepReach > 1 {
		s.DepReach = max(1, int(float64(p.DepReach)/factor+0.5))
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
