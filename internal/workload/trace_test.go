package workload

import "testing"

func TestTraceBasics(t *testing.T) {
	var b1, b2 TraceBuilder
	b1.Compute(100).Write(4).Read(4).Compute(50)
	b2.Compute(80).Read(4)
	tr := NewTrace("demo", [][]Op{b1.Ops(), b2.Ops()}, 0)
	if tr.Name() != "demo" || tr.NumTasks() != 2 || tr.TasksPerInvocation() != 0 {
		t.Fatal("trace metadata wrong")
	}
	ops, instr := tr.Task(0, nil)
	if instr != 150 {
		t.Fatalf("instr = %d, want 150", instr)
	}
	if len(ops) != 4 || ops[1].Kind != OpWrite || ops[1].Addr != 4 {
		t.Fatalf("ops wrong: %+v", ops)
	}
}

func TestTraceInsertsMinimalCompute(t *testing.T) {
	var b TraceBuilder
	b.Write(8)
	tr := NewTrace("", [][]Op{b.Ops()}, 0)
	ops, instr := tr.Task(0, nil)
	if instr != 1 || ops[0].Kind != OpCompute {
		t.Fatal("compute-free task must gain one instruction")
	}
	if tr.Name() != "trace" {
		t.Fatal("empty name must default")
	}
}

func TestTracePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty trace": func() { NewTrace("x", nil, 0) },
		"empty task":  func() { NewTrace("x", [][]Op{{}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBuilderIgnoresNonPositiveCompute(t *testing.T) {
	var b TraceBuilder
	b.Compute(0).Compute(-5).Read(1)
	if len(b.Ops()) != 1 {
		t.Fatalf("ops = %d, want 1", len(b.Ops()))
	}
}
