package workload

import (
	"math"
	"testing"

	"repro/internal/memsys"
)

func TestAllProfilesValidate(t *testing.T) {
	apps := Apps()
	if len(apps) != 7 {
		t.Fatalf("suite has %d applications, want 7", len(apps))
	}
	for _, p := range apps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAppByName(t *testing.T) {
	p, ok := AppByName("Euler")
	if !ok || p.Name != "Euler" {
		t.Fatal("AppByName(Euler) failed")
	}
	if _, ok := AppByName("nope"); ok {
		t.Fatal("AppByName of unknown app succeeded")
	}
}

func TestPaperCharacteristics(t *testing.T) {
	// Spot-check the published per-application characteristics (Table 3,
	// Figure 1, Section 4.2 prose).
	p3m, _ := AppByName("P3m")
	if p3m.QualImbalance != High || p3m.HeavyTailFrac == 0 {
		t.Error("P3m must be the high-imbalance application")
	}
	for _, name := range []string{"Tree", "Bdna"} {
		p, _ := AppByName(name)
		if p.PrivFrac < 0.9 {
			t.Errorf("%s must be privatization-dominant (got %v)", name, p.PrivFrac)
		}
	}
	for _, name := range []string{"Track", "Dsmc3d", "Euler"} {
		p, _ := AppByName(name)
		if p.PrivFrac > 0.05 {
			t.Errorf("%s must have no privatization patterns (got %v)", name, p.PrivFrac)
		}
	}
	euler, _ := AppByName("Euler")
	if euler.PaperSquash != 0.02 || euler.DepProb == 0 {
		t.Error("Euler is the squash-dominated application (0.02 squashes/task)")
	}
	// Commit/Execution ratio ordering: Apsi, Track, Euler are the apps whose
	// NUMA ratio times 16 processors exceeds 1 (Section 5.2).
	for _, name := range []string{"Apsi", "Track", "Euler"} {
		p, _ := AppByName(name)
		if p.PaperCENuma*16 <= 100 {
			t.Errorf("%s: paper C/E ratio %v%% x16 must exceed 100%%", name, p.PaperCENuma)
		}
	}
	for _, name := range []string{"P3m", "Tree", "Bdna", "Dsmc3d"} {
		p, _ := AppByName(name)
		if p.PaperCENuma*16 > 100 {
			t.Errorf("%s: paper C/E ratio %v%% x16 must stay below 100%%", name, p.PaperCENuma)
		}
	}
	// CMP ratios are roughly half the NUMA ratios.
	for _, p := range Apps() {
		if p.PaperCECmp >= p.PaperCENuma {
			t.Errorf("%s: CMP C/E (%v) must be below NUMA C/E (%v)", p.Name, p.PaperCECmp, p.PaperCENuma)
		}
	}
}

func TestFootprintArithmetic(t *testing.T) {
	p := Profile{Name: "x", Tasks: 1, InstrPerTask: 100, FootprintBytes: 1024,
		WriteDensity: 4, WritePhase: 1, ReadsPerWrite: 1}
	if p.WordsWritten() != 256 {
		t.Fatalf("WordsWritten = %d", p.WordsWritten())
	}
	if p.LinesWritten() != 64 {
		t.Fatalf("LinesWritten = %d (256 words at density 4)", p.LinesWritten())
	}
	dense := p
	dense.WriteDensity = 16
	if dense.LinesWritten() != 16 {
		t.Fatalf("dense LinesWritten = %d", dense.LinesWritten())
	}
}

func TestValidateRejects(t *testing.T) {
	good := Tree()
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Tasks = 0 },
		func(p *Profile) { p.InstrPerTask = 0 },
		func(p *Profile) { p.FootprintBytes = 0 },
		func(p *Profile) { p.WriteDensity = 0 },
		func(p *Profile) { p.WriteDensity = 17 },
		func(p *Profile) { p.PrivFrac = 1.5 },
		func(p *Profile) { p.WritePhase = 0 },
		func(p *Profile) { p.SharedReadFrac = -0.1 },
		func(p *Profile) { p.DepProb = 2 },
		func(p *Profile) { p.DepProb = 0.1; p.DepReach = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestScale(t *testing.T) {
	p := Bdna()
	s := p.Scale(0.5, 0.25, 0.25)
	if s.Tasks != p.Tasks/2 {
		t.Fatalf("scaled tasks = %d", s.Tasks)
	}
	if s.InstrPerTask != p.InstrPerTask/4 {
		t.Fatalf("scaled instructions = %d", s.InstrPerTask)
	}
	if s.FootprintBytes != p.FootprintBytes/4 {
		t.Fatalf("scaled footprint = %d", s.FootprintBytes)
	}
	// Zero scale clamps to a minimal valid profile.
	z := p.Scale(0, 0, 0)
	if z.Tasks < 1 || z.InstrPerTask < 1 || z.FootprintBytes < memsys.WordBytes {
		t.Fatal("scale must clamp to valid minima")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Euler().Scale(0.1, 0.1, 0.1), 42)
	g2 := NewGenerator(Euler().Scale(0.1, 0.1, 0.1), 42)
	for i := 0; i < 20; i++ {
		a, ia := g1.Task(i, nil)
		b, ib := g2.Task(i, nil)
		if ia != ib || len(a) != len(b) {
			t.Fatalf("task %d: shapes differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("task %d op %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	// A different seed must give a different stream.
	g3 := NewGenerator(Euler().Scale(0.1, 0.1, 0.1), 43)
	c, _ := g3.Task(0, nil)
	a, _ := g1.Task(0, nil)
	same := len(a) == len(c)
	if same {
		for j := range a {
			if a[j] != c[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator must panic on an invalid profile")
		}
	}()
	NewGenerator(Profile{}, 1)
}

func TestTaskInstructionsMatchStream(t *testing.T) {
	g := NewGenerator(Bdna().Scale(0.1, 0.1, 0.1), 7)
	ops, instr := g.Task(3, nil)
	sum := 0
	for _, op := range ops {
		if op.Kind == OpCompute {
			if op.Instr <= 0 {
				t.Fatal("empty compute chunk emitted")
			}
			sum += op.Instr
		}
	}
	if sum != instr {
		t.Fatalf("compute chunks sum to %d, want %d", sum, instr)
	}
}

func TestTaskFootprint(t *testing.T) {
	p := Apsi().Scale(0.1, 0.1, 0.1)
	g := NewGenerator(p, 9)
	ops, _ := g.Task(5, nil)
	written := map[memsys.Addr]bool{}
	lines := map[memsys.LineAddr]bool{}
	for _, op := range ops {
		if op.Kind == OpWrite {
			written[op.Addr] = true
			lines[op.Addr.Line()] = true
		}
	}
	// Written words = footprint words (+1 for the communication channel).
	want := p.LinesWritten() * p.WriteDensity
	got := len(written) - 1
	if got < want-p.WriteDensity || got > want+p.WriteDensity {
		t.Fatalf("distinct written words = %d, want ~%d", got, want)
	}
	wantLines := p.LinesWritten()
	if got := len(lines) - 1; got != wantLines {
		t.Fatalf("distinct written lines = %d, want %d", got, wantLines)
	}
}

func TestPrivatizationAddressesShared(t *testing.T) {
	p := Tree().Scale(0.2, 0.2, 0.2)
	g := NewGenerator(p, 11)
	privWrites := func(index int) map[memsys.Addr]bool {
		ops, _ := g.Task(index, nil)
		out := map[memsys.Addr]bool{}
		for _, op := range ops {
			if op.Kind == OpWrite && op.Addr >= PrivBase && op.Addr < UniqueBase {
				out[op.Addr] = true
			}
		}
		return out
	}
	a, b := privWrites(0), privWrites(7)
	if len(a) == 0 {
		t.Fatal("privatization-dominant app wrote no privatized words")
	}
	if len(a) != len(b) {
		t.Fatalf("priv footprints differ: %d vs %d", len(a), len(b))
	}
	for addr := range a {
		if !b[addr] {
			t.Fatal("tasks must write the SAME privatized variables (mostly-privatization pattern)")
		}
	}
}

func TestUniqueRegionsDoNotOverlapConcurrently(t *testing.T) {
	p := Track().Scale(0.2, 0.2, 0.2)
	g := NewGenerator(p, 13)
	uniqueWrites := func(index int) map[memsys.Addr]bool {
		ops, _ := g.Task(index, nil)
		out := map[memsys.Addr]bool{}
		for _, op := range ops {
			if op.Kind == OpWrite && op.Addr >= UniqueBase && op.Addr < CommBase {
				out[op.Addr] = true
			}
		}
		return out
	}
	// Nearby tasks use disjoint regions; tasks a full pool apart may share.
	a, b := uniqueWrites(3), uniqueWrites(4)
	for addr := range a {
		if b[addr] {
			t.Fatal("adjacent tasks share task-private addresses")
		}
	}
	c := uniqueWrites(3 + regionPool)
	overlap := false
	for addr := range a {
		if c[addr] {
			overlap = true
			break
		}
	}
	if !overlap {
		t.Fatal("region pool must recycle addresses (memory bound)")
	}
}

func TestImbalanceStatistics(t *testing.T) {
	balanced := NewGenerator(Apsi(), 17)
	imbalanced := NewGenerator(P3m(), 17)
	cv := func(g *Generator, n int) float64 {
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			m := g.LengthMultiplier(i)
			sum += m
			sumsq += m * m
		}
		mean := sum / float64(n)
		return math.Sqrt(sumsq/float64(n)-mean*mean) / mean
	}
	b, im := cv(balanced, 1000), cv(imbalanced, 1000)
	if b > 0.3 {
		t.Errorf("Apsi task-length CV = %.2f, want low", b)
	}
	if im < 1.0 {
		t.Errorf("P3m task-length CV = %.2f, want heavy-tailed (>1)", im)
	}
}

func TestHeavyTailProducesLongTasks(t *testing.T) {
	g := NewGenerator(P3m(), 19)
	maxMul := 0.0
	for i := 0; i < 2000; i++ {
		if m := g.LengthMultiplier(i); m > maxMul {
			maxMul = m
		}
	}
	if maxMul < 50 {
		t.Fatalf("longest P3m task multiplier = %.1f, want a >50x straggler", maxMul)
	}
}

func TestWritePhaseEarlyForPrivApps(t *testing.T) {
	p := Bdna().Scale(0.1, 0.1, 0.1)
	g := NewGenerator(p, 23)
	ops, instr := g.Task(2, nil)
	// All privatized/private writes must appear in the first WritePhase
	// fraction of the instruction stream (plus the late channel publish).
	executed := 0
	for _, op := range ops {
		switch op.Kind {
		case OpCompute:
			executed += op.Instr
		case OpWrite:
			if op.Addr >= CommBase {
				continue // channel publish is late by design
			}
			if frac := float64(executed) / float64(instr); frac > p.WritePhase+0.02 {
				t.Fatalf("write at %.0f%% of task, want within write phase %.0f%%",
					frac*100, p.WritePhase*100)
			}
		}
	}
}

func TestCommunicationOps(t *testing.T) {
	p := Euler().Scale(0.2, 0.2, 0.2)
	g := NewGenerator(p, 29)
	publishes, consumes := 0, 0
	for i := 0; i < p.Tasks; i++ {
		ops, _ := g.Task(i, nil)
		for _, op := range ops {
			if op.Addr >= CommBase {
				if op.Kind == OpWrite {
					publishes++
				} else {
					consumes++
				}
			}
		}
	}
	if publishes != p.Tasks {
		t.Fatalf("every task must publish once: %d/%d", publishes, p.Tasks)
	}
	want := float64(p.Tasks) * p.DepProb
	if consumes == 0 || math.Abs(float64(consumes)-want) > 4*math.Sqrt(want)+3 {
		t.Fatalf("consumes = %d, want ~%.0f", consumes, want)
	}
}

func TestNoCommunicationWithoutDeps(t *testing.T) {
	p := Tree().Scale(0.2, 0.2, 0.2)
	g := NewGenerator(p, 31)
	for i := 0; i < 50; i++ {
		ops, _ := g.Task(i, nil)
		for _, op := range ops {
			if op.Kind == OpRead && op.Addr >= CommBase {
				t.Fatal("dependence-free app issued a communication read")
			}
		}
	}
}

func TestSequentialOrderOracle(t *testing.T) {
	g := NewGenerator(Euler().Scale(0.2, 0.2, 0.2), 37)
	// Task 70 reading channel 6 must see task 6's value... unless a nearer
	// predecessor wrote it: channels repeat every commChannels tasks.
	got := g.SequentialOrderOracle(g.channelAddr(6), 70)
	if got != 6 {
		t.Fatalf("oracle = %d, want 6 (the only predecessor of 70 on channel 6)", got)
	}
	// Task 70 reading its own channel must see the previous occupant.
	got = g.SequentialOrderOracle(g.channelAddr(70), 70)
	if got != 70-commChannels {
		t.Fatalf("oracle = %d, want %d", got, 70-commChannels)
	}
	if got := g.SequentialOrderOracle(g.channelAddr(3), 2); got != -1 {
		t.Fatalf("oracle for unwritten channel = %d, want -1", got)
	}
	if got := g.SequentialOrderOracle(SharedBase+5, 9); got != -1 {
		t.Fatalf("oracle for shared region = %d, want -1", got)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{Low: "Low", Med: "Med", High: "High", HighMed: "High-Med", Level(9): "Level(9)"} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", uint8(l), got, want)
		}
	}
}

func TestOpsReuseBuffer(t *testing.T) {
	g := NewGenerator(Dsmc3d().Scale(0.1, 0.1, 0.1), 41)
	buf, _ := g.Task(0, nil)
	ptr := &buf[0]
	buf2, _ := g.Task(1, buf)
	if len(buf2) > 0 && len(buf2) <= cap(buf) && &buf2[0] != ptr {
		t.Fatal("generator did not reuse the provided buffer")
	}
}

func TestRechunkPreservesTotalWork(t *testing.T) {
	p := Euler()
	r := p.Rechunk(2)
	if got := r.Tasks * r.InstrPerTask; got < p.Tasks*p.InstrPerTask*95/100 ||
		got > p.Tasks*p.InstrPerTask*105/100 {
		t.Fatalf("total instructions changed: %d vs %d", got, p.Tasks*p.InstrPerTask)
	}
	if r.Tasks != p.Tasks/2 || r.InstrPerTask != p.InstrPerTask*2 {
		t.Fatalf("rechunk arithmetic wrong: %d tasks x %d instr", r.Tasks, r.InstrPerTask)
	}
	if r.TasksPerInvoc != p.TasksPerInvoc/2 {
		t.Fatalf("invocation size must rescale: %d", r.TasksPerInvoc)
	}
	if r.DepReach != p.DepReach/2 {
		t.Fatalf("dependence reach must rescale: %d", r.DepReach)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRechunkDegenerate(t *testing.T) {
	p := Euler()
	if got := p.Rechunk(0); got.Tasks != p.Tasks {
		t.Fatal("non-positive factor must be a no-op")
	}
	tiny := p.Rechunk(1e9)
	if tiny.Tasks != 1 || tiny.TasksPerInvoc < 1 || tiny.DepReach < 1 {
		t.Fatalf("extreme rechunk must clamp: %+v", tiny)
	}
}
