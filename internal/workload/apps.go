package workload

// The seven applications of the evaluation, parameterized from Table 3 and
// Figure 1-(a). Instructions per task and written footprints are the
// paper's full-size values; Tasks is the (scaled) section length we
// simulate; WriteDensity is calibrated so the measured Commit/Execution
// ratios land near Table 3 (see DESIGN.md §6 and EXPERIMENTS.md).
//
// Characteristic summary driving the expected results:
//
//   - P3m: high load imbalance (a few extremely long tasks), privatization
//     present, tiny Commit/Exec ratio → MultiT&MV wins big; deep version
//     stacks pressure AMM buffering (Figure 10).
//   - Tree: privatization dominant, small footprint, low Commit/Exec →
//     MultiT&SV degenerates to SingleT; laziness gains little.
//   - Bdna: privatization dominant, large dense footprint, medium
//     Commit/Exec → MultiT&MV and laziness both help.
//   - Apsi: privatization dominant, large footprint, high Commit/Exec →
//     commit wavefront matters even under MultiT&MV.
//   - Track: no privatization, sparse writes, high Commit/Exec →
//     MultiT&SV ≈ MultiT&MV; laziness helps everywhere.
//   - Dsmc3d: no privatization, small footprint, medium Commit/Exec.
//   - Euler: no privatization, high Commit/Exec, frequent squashes →
//     laziness helps, FMM recovery hurts (Figure 10).

// P3m returns the P3m (NCSA particle-mesh) pp do100 loop model.
func P3m() Profile {
	return Profile{
		Name:           "P3m",
		Tasks:          1100,
		InstrPerTask:   69100,
		FootprintBytes: 1741, // 1.7 KB
		WriteDensity:   16,
		PrivFrac:       0.85,
		WritePhase:     0.6,
		ImbalanceCV:    0.30,
		HeavyTailFrac:  0.012, // a handful of huge tasks per section
		HeavyTailMax:   380,
		ReadsPerWrite:  2.0,
		SharedReadFrac: 0.35,
		HotReadWords:   4096,
		DepProb:        0,
		DepReach:       0,
		PctTseq:        56.5,
		QualImbalance:  High,
		QualPriv:       Med,
		QualCommit:     Low,
		PaperCENuma:    0.3,
		PaperCECmp:     0.1,
		PaperSquash:    0,
	}
}

// Tree returns the Barnes tree-code accel do10 loop model.
func Tree() Profile {
	return Profile{
		Name:           "Tree",
		Tasks:          400,
		InstrPerTask:   28700,
		FootprintBytes: 922, // 0.9 KB
		WriteDensity:   12,
		PrivFrac:       0.99,
		WritePhase:     0.25, // privatized variables written early
		ImbalanceCV:    0.38,
		ReadsPerWrite:  2.5,
		SharedReadFrac: 0.45,
		HotReadWords:   2048,
		PctTseq:        92.2,
		QualImbalance:  Med,
		QualPriv:       High,
		QualCommit:     Low,
		PaperCENuma:    1.4,
		PaperCECmp:     0.4,
		PaperSquash:    0,
	}
}

// Bdna returns the Perfect-Club Bdna actfor do240 loop model.
func Bdna() Profile {
	return Profile{
		Name:           "Bdna",
		Tasks:          300,
		InstrPerTask:   103300,
		FootprintBytes: 24269, // 23.7 KB
		WriteDensity:   12,
		PrivFrac:       0.99,
		WritePhase:     0.3,
		ImbalanceCV:    0.30,
		ReadsPerWrite:  1.6,
		SharedReadFrac: 0.25,
		PctTseq:        44.2,
		QualImbalance:  Low,
		QualPriv:       High,
		QualCommit:     Med,
		PaperCENuma:    6.0,
		PaperCECmp:     3.9,
		PaperSquash:    0,
	}
}

// Apsi returns the SPECfp2000 Apsi run do[...] loops model.
func Apsi() Profile {
	return Profile{
		Name:           "Apsi",
		Tasks:          300,
		TasksPerInvoc:  50,
		InstrPerTask:   102600,
		FootprintBytes: 20480, // 20.0 KB
		WriteDensity:   2,
		PrivFrac:       0.88,
		WritePhase:     0.3,
		ImbalanceCV:    0.26,
		ReadsPerWrite:  1.6,
		SharedReadFrac: 0.40,
		HotReadWords:   1 << 16,
		PctTseq:        29.3,
		QualImbalance:  Low,
		QualPriv:       HighMed,
		QualCommit:     High,
		PaperCENuma:    11.4,
		PaperCECmp:     6.1,
		PaperSquash:    0,
	}
}

// Track returns the Perfect-Club Track nlfilt do300 loop model. Tasks are
// chunks of 4 iterations.
func Track() Profile {
	return Profile{
		Name:           "Track",
		Tasks:          400,
		TasksPerInvoc:  56,
		InstrPerTask:   58100,
		FootprintBytes: 2355, // 2.3 KB
		WriteDensity:   1,    // scattered (subscripted-subscript) writes
		PrivFrac:       0.006,
		WritePhase:     1.0,
		ImbalanceCV:    0.36,
		ReadsPerWrite:  2.0,
		SharedReadFrac: 0.40,
		DepProb:        0.010,
		DepReach:       24,
		PctTseq:        47.9,
		QualImbalance:  Low,
		QualPriv:       Low,
		QualCommit:     High,
		PaperCENuma:    12.6,
		PaperCECmp:     6.5,
		PaperSquash:    0.005,
	}
}

// Dsmc3d returns the HPF-2 Dsmc3d move3 goto100 loop model. Tasks are
// chunks of 16 iterations.
func Dsmc3d() Profile {
	return Profile{
		Name:           "Dsmc3d",
		Tasks:          500,
		TasksPerInvoc:  64,
		InstrPerTask:   41200,
		FootprintBytes: 819, // 0.8 KB
		WriteDensity:   2,
		PrivFrac:       0.005,
		WritePhase:     1.0,
		ImbalanceCV:    0.55,
		ReadsPerWrite:  2.2,
		SharedReadFrac: 0.40,
		HotReadWords:   1 << 15,
		DepProb:        0.012,
		DepReach:       24,
		PctTseq:        89.8,
		QualImbalance:  Med,
		QualPriv:       Low,
		QualCommit:     Med,
		PaperCENuma:    3.9,
		PaperCECmp:     2.0,
		PaperSquash:    0.005,
	}
}

// Euler returns the HPF-2 Euler dflux do100 loop model. Tasks are chunks of
// 32 iterations. Euler is the squash-dominated application: 0.02 squashes
// per committed task.
func Euler() Profile {
	return Profile{
		Name:           "Euler",
		Tasks:          600,
		TasksPerInvoc:  48,
		InstrPerTask:   22300,
		FootprintBytes: 7475, // 7.3 KB
		WriteDensity:   3,
		PrivFrac:       0.007,
		WritePhase:     1.0,
		ImbalanceCV:    0.32,
		ReadsPerWrite:  1.5,
		SharedReadFrac: 0.45,
		HotReadWords:   1 << 15,
		DepProb:        0.05,
		DepReach:       12,
		PctTseq:        58.8,
		QualImbalance:  Low,
		QualPriv:       Low,
		QualCommit:     High,
		PaperCENuma:    14.5,
		PaperCECmp:     7.5,
		PaperSquash:    0.02,
	}
}

// Apps returns the full application suite in the paper's presentation
// order.
func Apps() []Profile {
	return []Profile{P3m(), Tree(), Bdna(), Apsi(), Track(), Dsmc3d(), Euler()}
}

// AppByName returns the profile with the given name, or false.
func AppByName(name string) (Profile, bool) {
	for _, p := range Apps() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// StandardScale is the scaling the reproduction harness applies to every
// profile: half the tasks and a quarter of the instructions and footprint
// of the full-size applications. The scaling preserves the ratios that
// drive the buffering results (Commit/Execution, footprint density,
// imbalance, squash intensity) while keeping a full figure sweep tractable.
// P3m keeps its full written footprint: it is tiny (1.7 KB) and the
// same-set version pressure of Figure 10 depends on it.
func StandardScale(p Profile) Profile {
	foot := 0.25
	if p.Name == "P3m" {
		foot = 1.0
	}
	return p.Scale(0.5, 0.25, foot)
}

// StandardSuite returns the scaled application suite the harness runs.
func StandardSuite() []Profile {
	apps := Apps()
	for i := range apps {
		apps[i] = StandardScale(apps[i])
	}
	return apps
}
