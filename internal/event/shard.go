package event

import (
	"container/heap"
	"fmt"
)

// This file implements the sharded event queue of the parallel simulation
// mode: the pending set is partitioned into per-domain lanes (one lane per
// simulated node), and the firing order is reconstructed by a merge across
// the lane heads. Sequence numbers are allocated globally, so the merge
// order — ascending (when, seq), with the lane only breaking ties that
// cannot occur — is exactly the serial Queue's total order: a ShardedQueue
// fed the same schedule fires the identical event sequence, which is what
// keeps parallel-mode results bit-identical to the serial loop.
//
// The lanes exist so a conservative synchronization window can reason about
// each domain independently: Frontier reports how far one lane's earliest
// pending event is, MinFrontier the global safe floor, and RunWindow fires
// everything strictly before a horizon. The checkpoint surface (NextSeq,
// RestoreClock, ScheduleAt, Halt) mirrors the serial Queue so a run can be
// snapshotted in either mode and restored into either mode.

// ShardedQueue is an event queue whose pending set is partitioned into
// per-domain lanes. It is the parallel-mode counterpart of Queue and fires
// the same schedule in the same canonical order. It is not itself
// goroutine-safe: one goroutine owns the merge loop, and the parallelism
// lives in what the fired events overlap with (see internal/sim).
type ShardedQueue struct {
	now    Time
	nextSq uint64
	fired  uint64
	live   int

	lanes []shardLane

	compactions uint64
}

// shardLane is one domain's share of the pending set. fired and hiwater are
// diagnostic counters (events fired from this lane, peak live occupancy);
// they feed the per-lane PDES metrics surfaced by sim.ParallelStats and are
// never read back by the merge loop, so they cannot perturb firing order.
type shardLane struct {
	heap    eventHeap
	live    int
	free    *Event
	fired   uint64
	hiwater int
}

// NewSharded returns a sharded queue with the given number of domains
// (at least one).
func NewSharded(domains int) *ShardedQueue {
	if domains < 1 {
		panic("event: sharded queue with no domains")
	}
	return &ShardedQueue{lanes: make([]shardLane, domains)}
}

// Domains returns the number of lanes.
func (q *ShardedQueue) Domains() int { return len(q.lanes) }

// Now returns the current virtual time.
func (q *ShardedQueue) Now() Time { return q.now }

// Len returns the number of pending (non-canceled) events in O(1).
func (q *ShardedQueue) Len() int { return q.live }

// Fired returns the number of events executed since the queue was created.
func (q *ShardedQueue) Fired() uint64 { return q.fired }

// Compactions returns how many lane compactions swept canceled entries.
func (q *ShardedQueue) Compactions() uint64 { return q.compactions }

// LaneFired returns the number of events fired from domain's lane.
func (q *ShardedQueue) LaneFired(domain int) uint64 { return q.lanes[domain].fired }

// LaneHighWater returns the peak live occupancy domain's lane has reached —
// how many pending events the lane held at its busiest moment.
func (q *ShardedQueue) LaneHighWater(domain int) int { return q.lanes[domain].hiwater }

// NextSeq returns the sequence number the next scheduled event will get.
func (q *ShardedQueue) NextSeq() uint64 { return q.nextSq }

// At schedules fn on domain's lane at absolute time when. The same
// validity rules as Queue.At apply: the past and Never panic.
func (q *ShardedQueue) At(domain int, when Time, fn func(now Time)) Handle {
	if when < q.now {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", when, q.now))
	}
	if when == Never {
		panic("event: scheduling at Never; use Cancel for events that may not happen")
	}
	l := &q.lanes[domain]
	e := l.take()
	e.when, e.seq, e.fn, e.canceled, e.index = when, q.nextSq, fn, false, -1
	e.lane = int32(domain)
	q.nextSq++
	heap.Push(&l.heap, e)
	l.live++
	if l.live > l.hiwater {
		l.hiwater = l.live
	}
	q.live++
	return Handle{e: e, seq: e.seq, when: when}
}

// After schedules fn on domain's lane delay cycles from now.
func (q *ShardedQueue) After(domain int, delay Time, fn func(now Time)) Handle {
	return q.At(domain, q.now+delay, fn)
}

// take pops a recycled Event from the lane's free list, or allocates one.
func (l *shardLane) take() *Event {
	e := l.free
	if e != nil {
		l.free = e.next
		e.next = nil
	} else {
		e = new(Event)
	}
	return e
}

// release returns a popped or swept Event to its lane's free list.
func (l *shardLane) release(e *Event) {
	e.fn = nil
	e.index = -1
	e.next = l.free
	l.free = e
}

// Cancel marks the occurrence as canceled, with the same staleness rules
// as Queue.Cancel. The owning lane is compacted when more than half of a
// non-trivial lane heap is dead.
func (q *ShardedQueue) Cancel(h Handle) {
	e := h.e
	if e == nil || e.index < 0 || e.seq != h.seq || e.canceled {
		return
	}
	e.canceled = true
	l := &q.lanes[e.lane]
	l.live--
	q.live--
	if len(l.heap) >= compactMinHeap && 2*l.live < len(l.heap) {
		l.compact()
		q.compactions++
	}
}

// compact rebuilds the lane heap from its live entries, recycling the dead
// ones. Heap order is a total order on (when, seq), so re-initializing
// preserves the exact firing sequence.
func (l *shardLane) compact() {
	kept := l.heap[:0]
	for _, e := range l.heap {
		if e.canceled {
			l.release(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(l.heap); i++ {
		l.heap[i] = nil
	}
	l.heap = kept
	for i, e := range l.heap {
		e.index = i
	}
	heap.Init(&l.heap)
}

// head returns the lane's earliest pending event, sweeping canceled
// entries off the top, or nil when the lane is empty.
func (l *shardLane) head() *Event {
	for len(l.heap) > 0 {
		e := l.heap[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&l.heap)
		l.release(e)
	}
	return nil
}

// Frontier returns the time of domain's earliest pending event. ok is
// false when the lane is empty; an empty lane imposes no bound on the
// safe horizon.
func (q *ShardedQueue) Frontier(domain int) (t Time, ok bool) {
	if e := q.lanes[domain].head(); e != nil {
		return e.when, true
	}
	return 0, false
}

// MinFrontier returns the earliest pending time across all lanes — the
// global clock floor a conservative window starts from. ok is false when
// the queue is empty.
func (q *ShardedQueue) MinFrontier() (t Time, ok bool) {
	if e := q.min(); e != nil {
		return e.when, true
	}
	return 0, false
}

// min returns the globally earliest pending event under the canonical
// (when, seq) order, or nil. The lane count is the machine's node count, so
// a linear scan of lane heads beats maintaining a second heap.
func (q *ShardedQueue) min() *Event {
	var best *Event
	for i := range q.lanes {
		e := q.lanes[i].head()
		if e == nil {
			continue
		}
		if best == nil || e.when < best.when || (e.when == best.when && e.seq < best.seq) {
			best = e
		}
	}
	return best
}

// Step fires the canonically earliest pending event across all lanes and
// advances the clock to its time. It returns false when no events remain.
func (q *ShardedQueue) Step() bool {
	e := q.min()
	if e == nil {
		return false
	}
	l := &q.lanes[e.lane]
	heap.Pop(&l.heap)
	q.now = e.when
	q.fired++
	l.fired++
	l.live--
	q.live--
	fn := e.fn
	l.release(e)
	fn(q.now)
	return true
}

// Run fires events until the queue drains or until limit events have
// fired, with Queue.Run's limit semantics (0 = no limit).
func (q *ShardedQueue) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// RunWindow fires every event strictly before horizon, in canonical order,
// up to limit events (0 = no limit). It returns the number fired. Events
// scheduled during the window that land inside it fire too: the window is
// a bound on virtual time, not a snapshot of the pending set.
func (q *ShardedQueue) RunWindow(horizon Time, limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		e := q.min()
		if e == nil || e.when >= horizon {
			break
		}
		l := &q.lanes[e.lane]
		heap.Pop(&l.heap)
		q.now = e.when
		q.fired++
		l.fired++
		l.live--
		q.live--
		fn := e.fn
		l.release(e)
		fn(q.now)
		n++
	}
	return n
}

// RestoreClock sets the queue's clock and counters from a checkpoint, with
// Queue.RestoreClock's empty-queue requirement.
func (q *ShardedQueue) RestoreClock(now Time, nextSq, fired, compactions uint64) {
	if q.live != 0 {
		panic("event: RestoreClock on a non-empty sharded queue")
	}
	for i := range q.lanes {
		if len(q.lanes[i].heap) != 0 {
			panic("event: RestoreClock on a non-empty sharded queue")
		}
	}
	q.now = now
	q.nextSq = nextSq
	q.fired = fired
	q.compactions = compactions
}

// ScheduleAt re-inserts a checkpointed occurrence on domain's lane with
// its original absolute time and sequence number, with Queue.ScheduleAt's
// validity rules. It does not advance nextSq.
func (q *ShardedQueue) ScheduleAt(domain int, when Time, seq uint64, fn func(now Time)) Handle {
	if when < q.now {
		panic(fmt.Sprintf("event: restoring occurrence at %d before now %d", when, q.now))
	}
	if seq >= q.nextSq {
		panic(fmt.Sprintf("event: restoring occurrence seq %d >= nextSq %d", seq, q.nextSq))
	}
	l := &q.lanes[domain]
	e := l.take()
	e.when, e.seq, e.fn, e.canceled, e.index = when, seq, fn, false, -1
	e.lane = int32(domain)
	heap.Push(&l.heap, e)
	l.live++
	if l.live > l.hiwater {
		l.hiwater = l.live
	}
	q.live++
	return Handle{e: e, seq: seq, when: when}
}

// Halt drains every lane without firing anything, like Queue.Halt.
func (q *ShardedQueue) Halt() {
	for i := range q.lanes {
		l := &q.lanes[i]
		changed := false
		for _, e := range l.heap {
			if !e.canceled {
				e.canceled = true
				l.live--
				q.live--
				changed = true
			}
		}
		if changed || len(l.heap) > 0 {
			l.compact()
			q.compactions++
		}
	}
}
