package event

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestFiresInTimeOrder(t *testing.T) {
	var q Queue
	var got []Time
	for _, when := range []Time{50, 10, 30, 20, 40} {
		w := when
		q.At(w, func(now Time) { got = append(got, now) })
	}
	q.Run(0)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(100, func(Time) { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var q Queue
	q.At(7, func(now Time) {
		if now != 7 {
			t.Errorf("callback now = %d, want 7", now)
		}
	})
	q.Step()
	if q.Now() != 7 {
		t.Fatalf("Now() = %d after event at 7", q.Now())
	}
}

func TestAfterIsRelative(t *testing.T) {
	var q Queue
	q.At(10, func(now Time) {
		q.After(5, func(now2 Time) {
			if now2 != 15 {
				t.Errorf("After(5) from t=10 fired at %d", now2)
			}
		})
	})
	q.Run(0)
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(10, func(Time) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) must panic")
		}
	}()
	q.At(5, func(Time) {})
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.At(10, func(Time) { fired = true })
	q.Cancel(e)
	q.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	q.Cancel(nil) // must not panic
}

func TestLenSkipsCanceled(t *testing.T) {
	var q Queue
	e1 := q.At(1, func(Time) {})
	q.At(2, func(Time) {})
	q.Cancel(e1)
	if q.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", q.Len())
	}
}

func TestRunLimit(t *testing.T) {
	var q Queue
	count := 0
	for i := Time(1); i <= 10; i++ {
		q.At(i, func(Time) { count++ })
	}
	if n := q.Run(3); n != 3 || count != 3 {
		t.Fatalf("Run(3) fired %d (count %d)", n, count)
	}
	if n := q.Run(0); n != 7 || count != 10 {
		t.Fatalf("Run(0) fired %d (count %d)", n, count)
	}
}

func TestFiredCounter(t *testing.T) {
	var q Queue
	q.At(1, func(Time) {})
	e := q.At(2, func(Time) {})
	q.Cancel(e)
	q.Run(0)
	if q.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1 (canceled events don't count)", q.Fired())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var q Queue
	var order []string
	q.At(10, func(Time) {
		order = append(order, "a")
		q.At(10, func(Time) { order = append(order, "c") }) // same cycle, later seq
	})
	q.At(10, func(Time) { order = append(order, "b") })
	q.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: any set of scheduled times is fired in non-decreasing order.
func TestOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		var got []Time
		for _, w := range times {
			q.At(Time(w), func(now Time) { got = append(got, now) })
		}
		q.Run(0)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceUncontended(t *testing.T) {
	var r Resource
	start, done := r.Acquire(100, 10)
	if start != 100 || done != 110 {
		t.Fatalf("Acquire = (%d, %d), want (100, 110)", start, done)
	}
	if r.WaitCycles() != 0 {
		t.Fatal("uncontended request should not wait")
	}
}

func TestResourceQueues(t *testing.T) {
	var r Resource
	r.Acquire(100, 10)
	start, done := r.Acquire(105, 10)
	if start != 110 || done != 120 {
		t.Fatalf("second Acquire = (%d, %d), want (110, 120)", start, done)
	}
	if r.WaitCycles() != 5 {
		t.Fatalf("WaitCycles = %d, want 5", r.WaitCycles())
	}
	if r.Requests() != 2 {
		t.Fatalf("Requests = %d", r.Requests())
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	start, _ := r.Acquire(50, 5)
	if start != 50 {
		t.Fatalf("request after idle gap starts at %d, want 50", start)
	}
	if r.BusyCycles() != 15 {
		t.Fatalf("BusyCycles = %d, want 15", r.BusyCycles())
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 25)
	if u := r.Utilization(100); u != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	r.Reset()
	if r.BusyUntil() != 0 || r.Requests() != 0 || r.BusyCycles() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: service is never preempted — completions are start+service and
// starts never precede arrival or the previous completion.
func TestResourceProperty(t *testing.T) {
	f := func(arrivalDeltas []uint8, services []uint8) bool {
		var r Resource
		now := Time(0)
		prevDone := Time(0)
		n := len(arrivalDeltas)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivalDeltas[i])
			svc := Time(services[i])
			start, done := r.Acquire(now, svc)
			if start < now || start < prevDone || done != start+svc {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBanksInterleave(t *testing.T) {
	b := NewBanks(4)
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	// Requests to different banks at the same time don't queue on each other.
	_, d0 := b.Acquire(0, 0, 10)
	_, d1 := b.Acquire(1, 0, 10)
	if d0 != 10 || d1 != 10 {
		t.Fatalf("parallel banks queued: %d %d", d0, d1)
	}
	// Same bank (key 4 maps to bank 0) queues.
	start, _ := b.Acquire(4, 0, 10)
	if start != 10 {
		t.Fatalf("same-bank request started at %d, want 10", start)
	}
	if b.TotalWait() != 10 {
		t.Fatalf("TotalWait = %d, want 10", b.TotalWait())
	}
}

func TestBanksPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBanks(0) must panic")
		}
	}()
	NewBanks(0)
}
