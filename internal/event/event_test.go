package event

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestFiresInTimeOrder(t *testing.T) {
	var q Queue
	var got []Time
	for _, when := range []Time{50, 10, 30, 20, 40} {
		w := when
		q.At(w, func(now Time) { got = append(got, now) })
	}
	q.Run(0)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(100, func(Time) { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var q Queue
	q.At(7, func(now Time) {
		if now != 7 {
			t.Errorf("callback now = %d, want 7", now)
		}
	})
	q.Step()
	if q.Now() != 7 {
		t.Fatalf("Now() = %d after event at 7", q.Now())
	}
}

func TestAfterIsRelative(t *testing.T) {
	var q Queue
	q.At(10, func(now Time) {
		q.After(5, func(now2 Time) {
			if now2 != 15 {
				t.Errorf("After(5) from t=10 fired at %d", now2)
			}
		})
	})
	q.Run(0)
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(10, func(Time) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) must panic")
		}
	}()
	q.At(5, func(Time) {})
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.At(10, func(Time) { fired = true })
	if !h.Pending() {
		t.Fatal("Pending() = false for a scheduled event")
	}
	q.Cancel(h)
	q.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
	if h.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	q.Cancel(h)        // double cancel must be a no-op
	q.Cancel(Handle{}) // zero handle must not panic
}

func TestCancelStaleHandleIsNoop(t *testing.T) {
	var q Queue
	h := q.At(10, func(Time) {})
	q.Run(0)
	// The Event behind h is recycled for the next occurrence; canceling the
	// stale handle must not touch it.
	h2 := q.At(20, func(Time) {})
	q.Cancel(h)
	if !h2.Pending() {
		t.Fatal("stale Cancel killed a recycled event")
	}
	if q.Len() != 1 {
		t.Fatalf("Len() = %d after stale Cancel, want 1", q.Len())
	}
}

func TestAtNeverPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Fatal("At(Never) must panic")
		}
	}()
	q.At(Never, func(Time) {})
}

// TestCanceledEventsCompacted is the regression lock for the unbounded-heap
// leak: a watchdog-heavy run that schedules and cancels a million events
// must keep the raw heap bounded by the live population, not the
// cancellation churn, and Len must stay exact throughout.
func TestCanceledEventsCompacted(t *testing.T) {
	var q Queue
	fn := func(Time) {}
	const n = 1_000_000
	live := 0
	for i := 0; i < n; i++ {
		h := q.At(Time(i+1), fn)
		if i%1000 == 0 {
			live++ // every 1000th event survives
		} else {
			q.Cancel(h)
			q.Cancel(h) // double cancel must stay a no-op
		}
		// The heap may lag by the <50% dead allowance but must never grow
		// with total cancellations.
		if s := q.heapSize(); s > 2*live+compactMinHeap {
			t.Fatalf("heap holds %d entries for %d live events at iteration %d", s, live, i)
		}
	}
	if q.Len() != live {
		t.Fatalf("Len() = %d, want %d", q.Len(), live)
	}
	if q.Compactions() == 0 {
		t.Fatal("cancel-heavy run never compacted")
	}
	if got := q.Run(0); got != uint64(live) {
		t.Fatalf("Run fired %d of the %d surviving events", got, live)
	}
}

// TestCancelOnlyHeapStaysBounded cancels every scheduled event: the heap
// must stay near-empty instead of accumulating a million dead entries.
func TestCancelOnlyHeapStaysBounded(t *testing.T) {
	var q Queue
	fn := func(Time) {}
	for i := 0; i < 1_000_000; i++ {
		q.Cancel(q.At(Time(i+1), fn))
		if s := q.heapSize(); s > compactMinHeap {
			t.Fatalf("heap grew to %d dead entries at iteration %d", s, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
}

// TestScheduleFireAllocFree locks the free-list pooling: after warm-up,
// the schedule+fire steady state must not touch the allocator.
func TestScheduleFireAllocFree(t *testing.T) {
	var q Queue
	fn := func(Time) {}
	for i := 0; i < 64; i++ {
		q.At(q.Now()+Time(i%8), fn)
	}
	q.Run(0)
	if n := testing.AllocsPerRun(1000, func() {
		q.At(q.Now()+4, fn)
		q.Step()
	}); n != 0 {
		t.Fatalf("schedule+fire allocates %.1f allocs/op in steady state, want 0", n)
	}
}

func TestLenSkipsCanceled(t *testing.T) {
	var q Queue
	h1 := q.At(1, func(Time) {})
	q.At(2, func(Time) {})
	q.Cancel(h1)
	if q.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", q.Len())
	}
}

func TestRunLimit(t *testing.T) {
	var q Queue
	count := 0
	for i := Time(1); i <= 10; i++ {
		q.At(i, func(Time) { count++ })
	}
	if n := q.Run(3); n != 3 || count != 3 {
		t.Fatalf("Run(3) fired %d (count %d)", n, count)
	}
	if n := q.Run(0); n != 7 || count != 10 {
		t.Fatalf("Run(0) fired %d (count %d)", n, count)
	}
}

func TestFiredCounter(t *testing.T) {
	var q Queue
	q.At(1, func(Time) {})
	h := q.At(2, func(Time) {})
	q.Cancel(h)
	q.Run(0)
	if q.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1 (canceled events don't count)", q.Fired())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var q Queue
	var order []string
	q.At(10, func(Time) {
		order = append(order, "a")
		q.At(10, func(Time) { order = append(order, "c") }) // same cycle, later seq
	})
	q.At(10, func(Time) { order = append(order, "b") })
	q.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: any set of scheduled times is fired in non-decreasing order.
func TestOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		var got []Time
		for _, w := range times {
			q.At(Time(w), func(now Time) { got = append(got, now) })
		}
		q.Run(0)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceUncontended(t *testing.T) {
	var r Resource
	start, done := r.Acquire(100, 10)
	if start != 100 || done != 110 {
		t.Fatalf("Acquire = (%d, %d), want (100, 110)", start, done)
	}
	if r.WaitCycles() != 0 {
		t.Fatal("uncontended request should not wait")
	}
}

func TestResourceQueues(t *testing.T) {
	var r Resource
	r.Acquire(100, 10)
	start, done := r.Acquire(105, 10)
	if start != 110 || done != 120 {
		t.Fatalf("second Acquire = (%d, %d), want (110, 120)", start, done)
	}
	if r.WaitCycles() != 5 {
		t.Fatalf("WaitCycles = %d, want 5", r.WaitCycles())
	}
	if r.Requests() != 2 {
		t.Fatalf("Requests = %d", r.Requests())
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	start, _ := r.Acquire(50, 5)
	if start != 50 {
		t.Fatalf("request after idle gap starts at %d, want 50", start)
	}
	if r.BusyCycles() != 15 {
		t.Fatalf("BusyCycles = %d, want 15", r.BusyCycles())
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 25)
	if u := r.Utilization(100); u != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	r.Reset()
	if r.BusyUntil() != 0 || r.Requests() != 0 || r.BusyCycles() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: service is never preempted — completions are start+service and
// starts never precede arrival or the previous completion.
func TestResourceProperty(t *testing.T) {
	f := func(arrivalDeltas []uint8, services []uint8) bool {
		var r Resource
		now := Time(0)
		prevDone := Time(0)
		n := len(arrivalDeltas)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivalDeltas[i])
			svc := Time(services[i])
			start, done := r.Acquire(now, svc)
			if start < now || start < prevDone || done != start+svc {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBanksInterleave(t *testing.T) {
	b := NewBanks(4)
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	// Requests to different banks at the same time don't queue on each other.
	_, d0 := b.Acquire(0, 0, 10)
	_, d1 := b.Acquire(1, 0, 10)
	if d0 != 10 || d1 != 10 {
		t.Fatalf("parallel banks queued: %d %d", d0, d1)
	}
	// Same bank (key 4 maps to bank 0) queues.
	start, _ := b.Acquire(4, 0, 10)
	if start != 10 {
		t.Fatalf("same-bank request started at %d, want 10", start)
	}
	if b.TotalWait() != 10 {
		t.Fatalf("TotalWait = %d, want 10", b.TotalWait())
	}
}

func TestBanksPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBanks(0) must panic")
		}
	}()
	NewBanks(0)
}
