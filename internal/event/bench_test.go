package event

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	var q Queue
	fn := func(Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(q.Now()+Time(i%256), fn)
		q.Step()
	}
}

func BenchmarkResourceAcquire(b *testing.B) {
	var r Resource
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i), 4)
	}
}
