package event

// Resource models a contended unit — a memory bank, a directory bank, the
// commit token path — with busy-until occupancy semantics: a request
// arriving at time t is serviced starting at max(t, busyUntil) and occupies
// the resource for its service time. This is the standard first-order
// queuing model for execution-driven simulators and is what "contention is
// accurately modeled in the whole system" reduces to at our level of
// abstraction.
type Resource struct {
	busyUntil Time
	busyTotal Time // cumulative occupied cycles, for utilization stats
	requests  uint64
	waited    Time // cumulative queuing delay experienced by requests
}

// Acquire reserves the resource at or after now for service cycles. It
// returns the time at which service starts (>= now) and the time it
// completes.
func (r *Resource) Acquire(now Time, service Time) (start, done Time) {
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	done = start + service
	r.waited += start - now
	r.busyUntil = done
	r.busyTotal += service
	r.requests++
	return start, done
}

// BusyUntil returns the time at which the resource next becomes free.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Requests returns the number of Acquire calls served.
func (r *Resource) Requests() uint64 { return r.requests }

// BusyCycles returns the cumulative cycles the resource was occupied.
func (r *Resource) BusyCycles() Time { return r.busyTotal }

// WaitCycles returns the cumulative queuing delay experienced by requests.
func (r *Resource) WaitCycles() Time { return r.waited }

// Utilization returns busy cycles divided by the horizon, in [0, 1] when
// horizon covers the measurement period.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(r.busyTotal) / float64(horizon)
}

// Reset clears occupancy and statistics.
func (r *Resource) Reset() { *r = Resource{} }

// Bank array helpers: a set of interleaved resources addressed by an index
// (e.g. memory banks interleaved by line address).

// Banks is a fixed array of Resources indexed by a hash of the address.
type Banks struct {
	banks []Resource
}

// NewBanks returns n interleaved banks. n must be positive.
func NewBanks(n int) *Banks {
	if n <= 0 {
		panic("event: NewBanks with non-positive count")
	}
	return &Banks{banks: make([]Resource, n)}
}

// Len returns the number of banks.
func (b *Banks) Len() int { return len(b.banks) }

// Bank returns the resource for key (interleaved by modulo).
func (b *Banks) Bank(key uint64) *Resource {
	return &b.banks[key%uint64(len(b.banks))]
}

// Acquire reserves the bank selected by key.
func (b *Banks) Acquire(key uint64, now, service Time) (start, done Time) {
	return b.Bank(key).Acquire(now, service)
}

// TotalWait returns the cumulative queuing delay across all banks.
func (b *Banks) TotalWait() Time {
	var w Time
	for i := range b.banks {
		w += b.banks[i].WaitCycles()
	}
	return w
}

// BusyAt returns how many banks are occupied at time now — an observability
// read (the in-flight-messages gauge); it does not change occupancy.
func (b *Banks) BusyAt(now Time) int {
	n := 0
	for i := range b.banks {
		if b.banks[i].busyUntil > now {
			n++
		}
	}
	return n
}
