// Package event implements the discrete-event simulation kernel the
// multiprocessor simulator runs on: a virtual clock, a stable priority
// queue of timed events, and busy-until occupancy resources for modelling
// contention.
//
// Determinism is a hard requirement (the reproduction harness and the
// regression tests compare results across runs), so ties in time are broken
// by insertion sequence: two events scheduled for the same cycle fire in
// the order they were scheduled.
//
// The queue is allocation-free in steady state: Event objects are recycled
// through a free list once they fire (or once a canceled entry is swept),
// so a long simulation touches the heap allocator only while the pending
// set is still growing toward its high-water mark.
package event

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in processor clock cycles.
type Time uint64

// Never is a sentinel far-future time. It is a comparison bound, not a
// schedulable instant: At(Never, ...) panics, because an event at Never
// would silently pin the heap and never fire.
const Never Time = ^Time(0)

// compactMinHeap is the heap size below which canceled entries are left to
// be swept lazily by Step; compacting tiny heaps is not worth the walk.
const compactMinHeap = 64

// Event is a callback scheduled to run at a point in virtual time. Events
// are owned and recycled by their Queue; callers refer to a scheduled
// occurrence through the Handle returned by At/After.
type Event struct {
	when     Time
	seq      uint64
	index    int   // heap index; -1 when not queued
	lane     int32 // owning shard of a ShardedQueue; always 0 in a Queue
	canceled bool
	fn       func(now Time)
	next     *Event // free-list link while recycled
}

// Handle names one scheduled occurrence of an event. It stays valid
// forever: once the occurrence has fired (or been swept after a cancel),
// the underlying Event object may be recycled for a different occurrence,
// and the Handle — which remembers the occurrence's sequence number —
// simply stops matching. Cancel and Pending on a stale Handle are no-ops.
type Handle struct {
	e    *Event
	seq  uint64
	when Time
}

// When returns the time the occurrence was scheduled for.
func (h Handle) When() Time { return h.when }

// Pending reports whether the occurrence is still queued to fire: it has
// neither fired nor been canceled.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.index >= 0 && h.e.seq == h.seq && !h.e.canceled
}

// Queue is the event queue and clock of one simulation. The zero value is
// ready to use.
type Queue struct {
	now    Time
	nextSq uint64
	heap   eventHeap
	fired  uint64

	// live counts pending non-canceled events, making Len O(1); the
	// difference len(heap)-live is the dead (canceled, unswept) population.
	live int
	// free is the recycled-Event list.
	free *Event

	compactions uint64
}

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending (non-canceled) events in O(1).
func (q *Queue) Len() int { return q.live }

// Fired returns the number of events executed since the queue was created
// (canceled events never count). Together with Run's return value it is the
// progress/runaway accounting used by the simulator and the tests.
func (q *Queue) Fired() uint64 { return q.fired }

// Compactions returns how many times the heap was compacted to sweep
// canceled entries (observability for cancel-heavy workloads).
func (q *Queue) Compactions() uint64 { return q.compactions }

// At schedules fn to run at absolute time when and returns a Handle the
// caller may Cancel. Scheduling in the past is a simulator bug and panics;
// so is scheduling at Never, which would wedge the heap with an event that
// can never fire.
func (q *Queue) At(when Time, fn func(now Time)) Handle {
	if when < q.now {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", when, q.now))
	}
	if when == Never {
		panic("event: scheduling at Never; use Cancel for events that may not happen")
	}
	e := q.free
	if e != nil {
		q.free = e.next
		e.next = nil
	} else {
		e = new(Event)
	}
	e.when, e.seq, e.fn, e.canceled, e.index = when, q.nextSq, fn, false, -1
	q.nextSq++
	heap.Push(&q.heap, e)
	q.live++
	return Handle{e: e, seq: e.seq, when: when}
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func(now Time)) Handle {
	return q.At(q.now+delay, fn)
}

// Cancel marks the occurrence as canceled. A canceled event never fires.
// Canceling a zero, stale (already fired or already canceled) Handle is a
// no-op. When more than half of a non-trivial heap is dead, the heap is
// compacted so cancel-heavy runs (watchdogs, timeouts) stay bounded by the
// live population instead of growing with cancellation churn.
func (q *Queue) Cancel(h Handle) {
	e := h.e
	if e == nil || e.index < 0 || e.seq != h.seq || e.canceled {
		return
	}
	e.canceled = true
	q.live--
	if len(q.heap) >= compactMinHeap && 2*q.live < len(q.heap) {
		q.compact()
	}
}

// compact rebuilds the heap from its live entries, recycling the dead ones.
// Heap order is a total order on (when, seq), so re-initializing preserves
// the exact firing sequence.
func (q *Queue) compact() {
	kept := q.heap[:0]
	for _, e := range q.heap {
		if e.canceled {
			q.release(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(q.heap); i++ {
		q.heap[i] = nil
	}
	q.heap = kept
	for i, e := range q.heap {
		e.index = i
	}
	heap.Init(&q.heap)
	q.compactions++
}

// release returns a popped or swept Event to the free list. The seq is left
// as is: a stale Handle can only match an Event that is back in the heap
// with a fresh seq, so index<0 plus the seq check make Cancel safe.
func (q *Queue) release(e *Event) {
	e.fn = nil
	e.index = -1
	e.next = q.free
	q.free = e
}

// Step fires the earliest pending event and advances the clock to its time.
// It returns false when no events remain.
func (q *Queue) Step() bool {
	for q.heap.Len() > 0 {
		e := heap.Pop(&q.heap).(*Event)
		if e.canceled {
			q.release(e)
			continue
		}
		q.now = e.when
		q.fired++
		q.live--
		fn := e.fn
		q.release(e)
		fn(q.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or until limit events have fired.
// A limit of 0 means "no limit: run until the queue drains" — it is NOT a
// budget of zero. It returns the number of events fired by this call, so a
// caller using a positive limit as a runaway guard must treat a return
// value equal to the limit as "limit hit", not "drained": the queue may
// still hold events. (Fired() keeps the all-time count across calls.)
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// heapSize reports the raw heap length including dead entries (tests).
func (q *Queue) heapSize() int { return len(q.heap) }

// eventHeap is a min-heap on (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
