// Package event implements the discrete-event simulation kernel the
// multiprocessor simulator runs on: a virtual clock, a stable priority
// queue of timed events, and busy-until occupancy resources for modelling
// contention.
//
// Determinism is a hard requirement (the reproduction harness and the
// regression tests compare results across runs), so ties in time are broken
// by insertion sequence: two events scheduled for the same cycle fire in
// the order they were scheduled.
package event

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in processor clock cycles.
type Time uint64

// Never is a sentinel far-future time.
const Never Time = ^Time(0)

// Event is a callback scheduled to run at a point in virtual time.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index; -1 when not queued
	canceled bool
	fn       func(now Time)
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// Queue is the event queue and clock of one simulation. The zero value is
// ready to use.
type Queue struct {
	now    Time
	nextSq uint64
	heap   eventHeap
	fired  uint64
}

// Now returns the current virtual time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending (non-canceled) events. Canceled events
// still occupy the heap until popped, so this walks lazily-dead entries
// out of the count.
func (q *Queue) Len() int {
	n := 0
	for _, e := range q.heap {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Fired returns the number of events executed so far; useful for progress
// accounting and runaway detection in tests.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules fn to run at absolute time when. Scheduling in the past is a
// simulator bug and panics. It returns the event so the caller may cancel
// it.
func (q *Queue) At(when Time, fn func(now Time)) *Event {
	if when < q.now {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", when, q.now))
	}
	e := &Event{when: when, seq: q.nextSq, fn: fn, index: -1}
	q.nextSq++
	heap.Push(&q.heap, e)
	return e
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func(now Time)) *Event {
	return q.At(q.now+delay, fn)
}

// Cancel marks e as canceled. A canceled event never fires. Canceling a nil
// or already-fired event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e != nil {
		e.canceled = true
	}
}

// Step fires the earliest pending event and advances the clock to its time.
// It returns false when no events remain.
func (q *Queue) Step() bool {
	for q.heap.Len() > 0 {
		e := heap.Pop(&q.heap).(*Event)
		if e.canceled {
			continue
		}
		q.now = e.when
		q.fired++
		e.fn(q.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or until limit events have fired
// (0 means no limit). It returns the number of events fired by this call.
func (q *Queue) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// eventHeap is a min-heap on (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
