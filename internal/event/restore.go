package event

import (
	"container/heap"
	"fmt"
)

// This file is the checkpoint/restore surface of the kernel. A Queue cannot
// serialize itself — pending events hold closures — so the simulator records
// each pending occurrence as (tag, when, seq) plus the queue counters, and on
// restore rebuilds the closures and re-inserts them with their original
// sequence numbers. Because firing order is a total order on (when, seq),
// a restored queue fires the exact same schedule as the original.

// Seq returns the occurrence's sequence number, the tie-break half of the
// (when, seq) firing order. Checkpoints record it so a restored occurrence
// keeps its exact place in the schedule.
func (h Handle) Seq() uint64 { return h.seq }

// NextSeq returns the sequence number the next scheduled event will get.
// Checkpoints record it so ScheduleAt can validate restored occurrences.
func (q *Queue) NextSeq() uint64 { return q.nextSq }

// RestoreClock sets the queue's clock and counters from a checkpoint. It is
// only valid on an empty queue (restore re-inserts pending occurrences with
// ScheduleAt afterwards).
func (q *Queue) RestoreClock(now Time, nextSq, fired, compactions uint64) {
	if q.live != 0 || len(q.heap) != 0 {
		panic("event: RestoreClock on a non-empty queue")
	}
	q.now = now
	q.nextSq = nextSq
	q.fired = fired
	q.compactions = compactions
}

// ScheduleAt re-inserts a checkpointed occurrence with its original absolute
// time and sequence number. The occurrence must be from the checkpointed
// schedule: its seq must predate the restored nextSq and its time must not be
// in the past. Unlike At, ScheduleAt does not advance nextSq.
func (q *Queue) ScheduleAt(when Time, seq uint64, fn func(now Time)) Handle {
	if when < q.now {
		panic(fmt.Sprintf("event: restoring occurrence at %d before now %d", when, q.now))
	}
	if seq >= q.nextSq {
		panic(fmt.Sprintf("event: restoring occurrence seq %d >= nextSq %d", seq, q.nextSq))
	}
	e := q.free
	if e != nil {
		q.free = e.next
		e.next = nil
	} else {
		e = new(Event)
	}
	e.when, e.seq, e.fn, e.canceled, e.index = when, seq, fn, false, -1
	heap.Push(&q.heap, e)
	q.live++
	return Handle{e: e, seq: seq, when: when}
}

// Halt drains the queue without firing anything: every pending occurrence is
// canceled and swept, so the next Step returns false and Run unwinds. The
// simulator calls it after writing an interrupt checkpoint — the checkpoint
// has already recorded the pending schedule, so discarding it is safe.
func (q *Queue) Halt() {
	for _, e := range q.heap {
		if !e.canceled {
			e.canceled = true
			q.live--
		}
	}
	if len(q.heap) > 0 {
		q.compact()
	}
}

// ResourceState is the serializable state of a Resource.
type ResourceState struct {
	BusyUntil Time
	BusyTotal Time
	Requests  uint64
	Waited    Time
}

// State captures the resource for a checkpoint.
func (r *Resource) State() ResourceState {
	return ResourceState{
		BusyUntil: r.busyUntil, BusyTotal: r.busyTotal,
		Requests: r.requests, Waited: r.waited,
	}
}

// RestoreState reinstates a checkpointed resource.
func (r *Resource) RestoreState(s ResourceState) {
	r.busyUntil = s.BusyUntil
	r.busyTotal = s.BusyTotal
	r.requests = s.Requests
	r.waited = s.Waited
}

// State captures every bank for a checkpoint.
func (b *Banks) State() []ResourceState {
	out := make([]ResourceState, len(b.banks))
	for i := range b.banks {
		out[i] = b.banks[i].State()
	}
	return out
}

// RestoreState reinstates checkpointed banks; the count must match the
// machine geometry the Banks were built with.
func (b *Banks) RestoreState(states []ResourceState) error {
	if len(states) != len(b.banks) {
		return fmt.Errorf("event: restoring %d bank states into %d banks", len(states), len(b.banks))
	}
	for i := range states {
		b.banks[i].RestoreState(states[i])
	}
	return nil
}
