package event

import (
	"math/rand"
	"testing"
)

// TestShardedMatchesSerialOrder drives a serial Queue and a ShardedQueue
// with the same randomized schedule — including events scheduled from
// inside callbacks and cancellations — and requires the identical firing
// sequence. This is the bit-identity contract the parallel simulator
// leans on.
func TestShardedMatchesSerialOrder(t *testing.T) {
	const domains = 4
	for trial := 0; trial < 20; trial++ {
		rngA := rand.New(rand.NewSource(int64(1000 + trial)))
		rngB := rand.New(rand.NewSource(int64(1000 + trial)))

		serial := runSerialSchedule(rngA)
		sharded := runShardedSchedule(rngB, domains)

		if len(serial) != len(sharded) {
			t.Fatalf("trial %d: serial fired %d events, sharded fired %d", trial, len(serial), len(sharded))
		}
		for i := range serial {
			if serial[i] != sharded[i] {
				t.Fatalf("trial %d: firing %d differs: serial %+v sharded %+v", trial, i, serial[i], sharded[i])
			}
		}
	}
}

// firing records one observed callback: the virtual time it ran at and the
// schedule-order identity of the event.
type firing struct {
	at Time
	id int
}

// scheduleScript returns the deterministic pseudo-random script both queues
// replay: a list of (delay, cancelEarlier) records. Events re-schedule
// children from inside their callbacks so the schedule exercises
// mid-firing insertion, and every few events an earlier pending handle is
// canceled.
func runSerialSchedule(rng *rand.Rand) []firing {
	var q Queue
	var got []firing
	var handles []Handle
	id := 0
	var spawn func(depth int) func(Time)
	spawn = func(depth int) func(Time) {
		myID := id
		id++
		return func(now Time) {
			got = append(got, firing{at: now, id: myID})
			if depth < 2 {
				kids := rng.Intn(3)
				for k := 0; k < kids; k++ {
					h := q.After(Time(rng.Intn(5)), spawn(depth+1))
					handles = append(handles, h)
				}
			}
			if len(handles) > 0 && rng.Intn(4) == 0 {
				q.Cancel(handles[rng.Intn(len(handles))])
			}
		}
	}
	for i := 0; i < 50; i++ {
		handles = append(handles, q.At(Time(rng.Intn(20)), spawn(0)))
	}
	q.Run(0)
	return got
}

// runShardedSchedule replays the same script against a ShardedQueue,
// spraying events across domains with the same rng stream. The domain
// choice consumes rng in lockstep with nothing on the serial side — so it
// is derived from the event id instead, keeping the two rng streams
// aligned while still scattering same-cycle events across lanes.
func runShardedSchedule(rng *rand.Rand, domains int) []firing {
	q := NewSharded(domains)
	var got []firing
	var handles []Handle
	id := 0
	var spawn func(depth int) func(Time)
	spawn = func(depth int) func(Time) {
		myID := id
		id++
		return func(now Time) {
			got = append(got, firing{at: now, id: myID})
			if depth < 2 {
				kids := rng.Intn(3)
				for k := 0; k < kids; k++ {
					h := q.After(id%domains, Time(rng.Intn(5)), spawn(depth+1))
					handles = append(handles, h)
				}
			}
			if len(handles) > 0 && rng.Intn(4) == 0 {
				q.Cancel(handles[rng.Intn(len(handles))])
			}
		}
	}
	for i := 0; i < 50; i++ {
		handles = append(handles, q.At(id%domains, Time(rng.Intn(20)), spawn(0)))
	}
	q.Run(0)
	return got
}

// TestShardedAdversarialSameCycle schedules a burst of events all at the
// SAME cycle, interleaved across lanes in an order chosen to make any
// per-lane or per-domain pop order produce the wrong sequence. The merge
// must fire them in global insertion (seq) order.
func TestShardedAdversarialSameCycle(t *testing.T) {
	const domains = 8
	q := NewSharded(domains)
	var got []int
	// Insertion order deliberately walks the domains backwards and
	// revisits them, so domain-major order, reverse order, and
	// round-robin order all differ from seq order.
	order := []int{7, 3, 7, 0, 5, 3, 1, 0, 7, 2, 6, 4, 2, 0, 1, 5}
	for i, d := range order {
		i := i
		q.At(d, 100, func(Time) { got = append(got, i) })
	}
	// A later-seq event at an EARLIER time must still fire first.
	first := false
	q.At(6, 50, func(Time) { first = true })
	q.Run(0)
	if !first {
		t.Fatal("earlier-time event did not fire")
	}
	if len(got) != len(order) {
		t.Fatalf("fired %d of %d same-cycle events", len(got), len(order))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle merge order broken: position %d fired event %d (want seq order)", i, v)
		}
	}
	if q.Now() != 100 {
		t.Fatalf("clock = %d, want 100", q.Now())
	}
	if q.Fired() != uint64(len(order)+1) {
		t.Fatalf("Fired = %d, want %d", q.Fired(), len(order)+1)
	}
}

// TestShardedCancelAndCompact verifies cancel semantics (stale handles,
// live accounting) and that a cancel-heavy lane compacts.
func TestShardedCancelAndCompact(t *testing.T) {
	q := NewSharded(2)
	var fired int
	keep := q.At(0, 10, func(Time) { fired++ })
	var doomed []Handle
	for i := 0; i < 2*compactMinHeap; i++ {
		doomed = append(doomed, q.At(1, Time(20+i), func(Time) { t.Error("canceled event fired") }))
	}
	if q.Len() != 2*compactMinHeap+1 {
		t.Fatalf("Len = %d", q.Len())
	}
	for _, h := range doomed {
		q.Cancel(h)
	}
	if q.Len() != 1 {
		t.Fatalf("Len after cancels = %d, want 1", q.Len())
	}
	if q.Compactions() == 0 {
		t.Fatal("cancel-heavy lane never compacted")
	}
	// Canceling again, and canceling a zero handle, are no-ops.
	q.Cancel(doomed[0])
	q.Cancel(Handle{})
	if keep.Pending() != true {
		t.Fatal("surviving handle not pending")
	}
	q.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if keep.Pending() {
		t.Fatal("fired handle still pending")
	}
	// A stale cancel after firing must not corrupt the recycled pool.
	q.Cancel(keep)
	ok := false
	q.At(0, q.Now()+1, func(Time) { ok = true })
	q.Run(0)
	if !ok {
		t.Fatal("event scheduled after stale cancel did not fire")
	}
}

// TestShardedFrontierAndWindow checks the safe-horizon primitives: Frontier
// per lane, MinFrontier globally, and RunWindow's strict upper bound —
// including events scheduled during the window that land inside it.
func TestShardedFrontierAndWindow(t *testing.T) {
	q := NewSharded(3)
	var got []int
	q.At(0, 10, func(Time) {
		got = append(got, 0)
		// Scheduled mid-window, lands inside the window: must fire too.
		q.At(2, 12, func(Time) { got = append(got, 1) })
	})
	q.At(1, 30, func(Time) { got = append(got, 2) })

	if tm, ok := q.Frontier(0); !ok || tm != 10 {
		t.Fatalf("Frontier(0) = %d,%v", tm, ok)
	}
	if _, ok := q.Frontier(2); ok {
		t.Fatal("empty lane reported a frontier")
	}
	if tm, ok := q.MinFrontier(); !ok || tm != 10 {
		t.Fatalf("MinFrontier = %d,%v", tm, ok)
	}

	n := q.RunWindow(20, 0)
	if n != 2 {
		t.Fatalf("RunWindow fired %d, want 2", n)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("window fired %v", got)
	}
	// The event at exactly the horizon must NOT fire (strict bound).
	if n := q.RunWindow(30, 0); n != 0 {
		t.Fatalf("RunWindow(30) fired %d events at the horizon", n)
	}
	if tm, ok := q.MinFrontier(); !ok || tm != 30 {
		t.Fatalf("MinFrontier after window = %d,%v", tm, ok)
	}
	if n := q.RunWindow(31, 0); n != 1 {
		t.Fatalf("RunWindow(31) fired %d, want 1", n)
	}
	if _, ok := q.MinFrontier(); ok {
		t.Fatal("drained queue reported a frontier")
	}
	// RunWindow with a limit stops at the limit.
	for i := 0; i < 5; i++ {
		q.At(i%3, q.Now()+1, func(Time) {})
	}
	if n := q.RunWindow(Never, 3); n != 3 {
		t.Fatalf("limited RunWindow fired %d, want 3", n)
	}
	q.Run(0)
}

// TestShardedRestoreRoundTrip drains a sharded queue via Halt, restores its
// clock and re-inserts the surviving occurrences with their original seqs,
// and checks the replay fires in the original order. This is the checkpoint
// restore path.
func TestShardedRestoreRoundTrip(t *testing.T) {
	q := NewSharded(2)
	var first []firing
	h0 := q.At(0, 5, func(now Time) { first = append(first, firing{now, 0}) })
	h1 := q.At(1, 5, func(now Time) { first = append(first, firing{now, 1}) })
	h2 := q.At(0, 9, func(now Time) { first = append(first, firing{now, 2}) })
	_ = h2

	// Record the pending set, then halt (checkpoint-style).
	type pend struct {
		domain int
		when   Time
		seq    uint64
		id     int
	}
	pending := []pend{
		{0, h0.When(), h0.Seq(), 0},
		{1, h1.When(), h1.Seq(), 1},
		{0, h2.When(), h2.Seq(), 2},
	}
	now, nextSq, fired, comp := q.Now(), q.NextSeq(), q.Fired(), q.Compactions()
	q.Halt()
	if q.Len() != 0 {
		t.Fatalf("Len after Halt = %d", q.Len())
	}
	if n := q.Run(0); n != 0 {
		t.Fatal("halted queue fired events")
	}

	// Restore into a fresh sharded queue.
	r := NewSharded(2)
	r.RestoreClock(now, nextSq, fired, comp)
	if r.Now() != now || r.NextSeq() != nextSq || r.Fired() != fired {
		t.Fatal("RestoreClock did not restore counters")
	}
	var replay []firing
	for _, p := range pending {
		p := p
		r.ScheduleAt(p.domain, p.when, p.seq, func(nw Time) { replay = append(replay, firing{nw, p.id}) })
	}
	r.Run(0)
	want := []firing{{5, 0}, {5, 1}, {9, 2}}
	if len(replay) != len(want) {
		t.Fatalf("replay fired %d events", len(replay))
	}
	for i := range want {
		if replay[i] != want[i] {
			t.Fatalf("replay[%d] = %+v, want %+v", i, replay[i], want[i])
		}
	}
	// New scheduling after restore continues the seq space.
	if r.NextSeq() != nextSq {
		t.Fatalf("ScheduleAt advanced nextSq to %d", r.NextSeq())
	}

	// Restore validity rules.
	mustPanic(t, "ScheduleAt seq>=nextSq", func() {
		r.ScheduleAt(0, r.Now()+1, r.NextSeq(), func(Time) {})
	})
	mustPanic(t, "RestoreClock non-empty", func() {
		s := NewSharded(1)
		s.At(0, 1, func(Time) {})
		s.RestoreClock(0, 5, 0, 0)
	})
}

// TestShardedAtValidity checks the scheduling panics match the serial queue.
func TestShardedAtValidity(t *testing.T) {
	q := NewSharded(1)
	q.At(0, 4, func(Time) {})
	q.Run(0)
	mustPanic(t, "At in the past", func() { q.At(0, 3, func(Time) {}) })
	mustPanic(t, "At Never", func() { q.At(0, Never, func(Time) {}) })
	mustPanic(t, "NewSharded(0)", func() { NewSharded(0) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}
