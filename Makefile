GO ?= go

# BENCH is the checked-in benchmark-baseline document; override to cut or
# gate against a different one (make bench BENCH=BENCH_4.json).
BENCH ?= BENCH_3.json

.PHONY: build test fmt vet race race-short chaos cluster cluster-chaos fsck-drill verify report bench bench-baseline trace fleet-trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# fmt fails when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# race exercises the packages the experiment orchestrator made concurrent.
race:
	$(GO) test -race ./internal/exp ./internal/report ./internal/sim

# race-short runs the whole module under the race detector in short mode —
# the CI job that guards the parallel simulation core (sharded queue,
# prefetch workers, cluster sleep seams) without full-grid runtimes.
race-short:
	$(GO) test -race -short ./...

# chaos is the bounded fault-injection campaign (~30s): recoverable faults
# must be absorbed with zero invariant violations, injected tag corruption
# must be detected by the checker, and an interrupted-then-resumed campaign
# must emit a report byte-identical to an uninterrupted run's.
chaos:
	$(GO) run ./cmd/tlschaos -seeds 40
	$(GO) run ./cmd/tlschaos -seeds 10 -faults flip-tag
	GO="$(GO)" sh ./scripts/chaos_drill.sh

# cluster is the distributed-campaign drill: a loopback fleet (tlsserve +
# two tlsworkers) runs a figure grid, loses one worker and the coordinator
# to SIGKILL mid-campaign, resumes from the WAL, and must render artifacts
# byte-identical to a serial tlsreport run.
cluster:
	GO="$(GO)" sh ./scripts/cluster_drill.sh

# cluster-chaos is the hostile-network drill: every fabric link injects
# seeded faults (drops, delays, duplicates, reordering, truncation,
# corruption, partition windows), one worker is fully byzantine and must be
# circuit-broken, one healthy worker dies to SIGKILL — and the fleet report
# must still be byte-identical to a serial run.
cluster-chaos:
	GO="$(GO)" sh ./scripts/cluster_chaos_drill.sh

# fsck-drill is the storage-fault drill: a journaled, cached sweep dies to a
# simulated power cut mid-campaign (-io-chaos), tlsfsck verifies and repairs
# the surviving state, and the resumed campaign's CSV must be byte-identical
# to a clean uninterrupted run's.
fsck-drill:
	GO="$(GO)" sh ./scripts/fsck_drill.sh

# verify is the CI gate: formatting, vet, build, full tests, race tests.
verify: fmt vet build test race

# report regenerates every table and figure through the orchestrator.
report:
	$(GO) run ./cmd/tlsreport -metrics

# trace emits a Perfetto trace of an observed run (exec/commit lanes,
# counter tracks, squash flow arrows) and validates it against the
# trace-event schema — the artifact CI uploads for ui.perfetto.dev.
trace:
	$(GO) run ./cmd/tlstrace -app Euler -machine cmp -perfetto trace.json
	$(GO) run ./cmd/tlstrace -validate trace.json

# fleet-trace is the fleet-observability drill: a loopback fleet (tlsserve
# -trace + two tlsworker -trace) runs a figure grid, the coordinator writes
# one merged Perfetto trace (pid per process, lease->attempt->complete
# flow arrows) that tlstrace -validate must accept, /metrics must expose
# the phase-latency histograms, and a panic-injection step must leave a
# flight-recorder dump in the quarantine manifest.
fleet-trace:
	GO="$(GO)" sh ./scripts/fleet_trace_drill.sh

# bench runs the tlsbench hot-path suite and gates allocs/op against the
# checked-in baseline (±30% band); ns/op and events/sec are informational.
# The log is tee'd to bench-report.txt — it carries the serial-vs-parallel
# full-run wall times and the "parallel speedup" line CI archives.
bench:
	@$(GO) run ./cmd/tlsbench -baseline $(BENCH) -compare > bench-report.txt 2>&1; \
	st=$$?; cat bench-report.txt; exit $$st

# bench-baseline refreshes the checked-in baseline after an intentional
# performance change (run on a quiet machine, then commit $(BENCH)).
bench-baseline:
	$(GO) run ./cmd/tlsbench -baseline $(BENCH) -out \
		-note "PR 3 baseline after the hot-path allocation overhaul; seed (pre-overhaul) reference: event/schedule-fire 59.5 ns/op 1 alloc/op, directory/record-write-read 228.6 ns/op 2 allocs/op, sim/full-run 238.5 ms/op 130875 allocs/op"
