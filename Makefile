GO ?= go

.PHONY: build test fmt vet race chaos verify report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# fmt fails when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# race exercises the packages the experiment orchestrator made concurrent.
race:
	$(GO) test -race ./internal/exp ./internal/report ./internal/sim

# chaos is the bounded fault-injection campaign (~30s): recoverable faults
# must be absorbed with zero invariant violations, and injected tag
# corruption must be detected by the checker.
chaos:
	$(GO) run ./cmd/tlschaos -seeds 40
	$(GO) run ./cmd/tlschaos -seeds 10 -faults flip-tag

# verify is the CI gate: formatting, vet, build, full tests, race tests.
verify: fmt vet build test race

# report regenerates every table and figure through the orchestrator.
report:
	$(GO) run ./cmd/tlsreport -metrics
