// Package repro is a library reproduction of "Tradeoffs in Buffering
// Memory State for Thread-Level Speculation in Multiprocessors" (Garzarán,
// Prvulovic, Llabería, Viñals, Rauchwerger, Torrellas — HPCA-9, 2003).
//
// The paper classifies approaches to buffering multi-version speculative
// memory state along two axes — how a processor separates the state of its
// speculative tasks (SingleT, MultiT&SV, MultiT&MV) and how task state
// merges with main memory (Eager AMM, Lazy AMM, FMM) — and evaluates every
// design point with an execution-driven simulation of a 16-node CC-NUMA
// and an 8-processor CMP running seven speculatively-parallelized
// numerical applications.
//
// This package is the public face of the reproduction:
//
//   - the taxonomy, its support-requirement analysis (Tables 1 and 2), the
//     mapping of previously proposed schemes (Figure 4), and the per-scheme
//     limiting characteristics (Figure 8);
//   - a discrete-event multiprocessor simulator with versioned caches
//     (task-ID tags and retrieval logic), a word-granularity speculative
//     coherence protocol, per-processor overflow areas and undo logs, and
//     the commit-token machinery;
//   - synthetic models of the seven applications, parameterized from the
//     paper's published characteristics;
//   - experiment harnesses that regenerate every table and figure of the
//     evaluation.
//
// Quick start:
//
//	seq := repro.RunSequential(repro.NUMA16(), repro.Bdna(), 1)
//	res := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, repro.Bdna(), 1)
//	fmt.Printf("speedup %.2f\n", res.Speedup(seq.ExecCycles))
//
// All simulations are deterministic functions of (machine, scheme,
// profile, seed).
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/iofault"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Taxonomy types (see internal/core for the full documentation).
type (
	// Scheme is one design point: a separation policy crossed with a
	// merging policy (plus the software-log FMM variant).
	Scheme = core.Scheme
	// Separation is the vertical axis of the taxonomy.
	Separation = core.Separation
	// Merging is the horizontal axis of the taxonomy.
	Merging = core.Merging
	// Support is one of the hardware/software mechanisms of Table 1.
	Support = core.Support
	// SupportSet is a set of required mechanisms.
	SupportSet = core.SupportSet
	// UpgradeStep is one row of Table 2.
	UpgradeStep = core.UpgradeStep
	// ExistingScheme is one Figure 4 entry.
	ExistingScheme = core.ExistingScheme
)

// The separation axis.
const (
	SingleT  = core.SingleT
	MultiTSV = core.MultiTSV
	MultiTMV = core.MultiTMV
)

// The merging axis.
const (
	EagerAMM = core.EagerAMM
	LazyAMM  = core.LazyAMM
	FMM      = core.FMM
)

// The modelled design points.
var (
	SingleTEager  = core.SingleTEager
	SingleTLazy   = core.SingleTLazy
	MultiTSVEager = core.MultiTSVEager
	MultiTSVLazy  = core.MultiTSVLazy
	MultiTMVEager = core.MultiTMVEager
	MultiTMVLazy  = core.MultiTMVLazy
	MultiTMVFMM   = core.MultiTMVFMM
	MultiTMVFMMSw = core.MultiTMVFMMSw

	// CoarseRecovery is the LRPD/SUDS-style software-only baseline of
	// Figure 4: a speculative doall with software access marking, an
	// end-of-section dependence test, and serial re-execution on failure.
	CoarseRecovery = core.CoarseRecovery
)

// AllSchemes returns every design point the paper evaluates.
func AllSchemes() []Scheme { return core.AllSchemes() }

// ExtendedSchemes returns AllSchemes plus the coarse-recovery baseline.
func ExtendedSchemes() []Scheme { return core.ExtendedSchemes() }

// SchemeFromString parses a scheme by its display name (case-insensitive).
func SchemeFromString(name string) (Scheme, bool) { return core.SchemeFromString(name) }

// RequiredSupports returns the Table 1 mechanisms a scheme needs (Table 2).
func RequiredSupports(s Scheme) SupportSet { return core.RequiredSupports(s) }

// UpgradePath returns Table 2's feature-upgrade path.
func UpgradePath() []UpgradeStep { return core.UpgradePath() }

// ExistingSchemes returns Figure 4's registry of previously proposed
// schemes mapped onto the taxonomy.
func ExistingSchemes() []ExistingScheme { return core.ExistingSchemes() }

// Machines.
type (
	// Machine is a simulated architecture configuration.
	Machine = machine.Config
)

// NUMA16 returns the 16-node scalable CC-NUMA machine of Section 4.1.
func NUMA16() *Machine { return machine.NUMA16() }

// NUMA16BigL2 returns the Lazy.L2 variant (4-MB, 16-way L2) of Figure 10.
func NUMA16BigL2() *Machine { return machine.NUMA16BigL2() }

// CMP8 returns the 8-processor chip multiprocessor of Section 4.1.
func CMP8() *Machine { return machine.CMP8() }

// ScalableNUMA returns a CC-NUMA machine with the given processor count
// (the paper's machine generalized for scalability sweeps).
func ScalableNUMA(nodes int) *Machine { return machine.ScalableNUMA(nodes) }

// Workloads.
type (
	// Profile describes one application's speculative section.
	Profile = workload.Profile
	// Workload supplies a section's tasks; implemented by the synthetic
	// generators and by explicit Traces.
	Workload = sim.Workload
	// Trace is an explicit user-supplied workload.
	Trace = workload.Trace
	// TraceBuilder accumulates one task's operations fluently.
	TraceBuilder = workload.TraceBuilder
	// Op is one operation of a task stream.
	Op = workload.Op
	// Addr is a word address.
	Addr = memsys.Addr
)

// NewTrace builds an explicit workload from per-task operation streams.
func NewTrace(name string, tasks [][]Op, tasksPerInvoc int) *Trace {
	return workload.NewTrace(name, tasks, tasksPerInvoc)
}

// The application suite (full-size parameters; see StandardSuite for the
// harness scaling).
var (
	P3m    = workload.P3m
	Tree   = workload.Tree
	Bdna   = workload.Bdna
	Apsi   = workload.Apsi
	Track  = workload.Track
	Dsmc3d = workload.Dsmc3d
	Euler  = workload.Euler
)

// Apps returns the seven applications at full-size parameters.
func Apps() []Profile { return workload.Apps() }

// StandardSuite returns the suite at the reproduction harness's standard
// scaling.
func StandardSuite() []Profile { return workload.StandardSuite() }

// AppByName looks a profile up by name ("P3m" ... "Euler").
func AppByName(name string) (Profile, bool) { return workload.AppByName(name) }

// Simulation.
type (
	// Result is the outcome of one simulation run.
	Result = sim.Result
	// Simulator runs one speculative section; use New for tracing control,
	// or the Run helpers.
	Simulator = sim.Simulator
	// TraceEvent is one timeline record of a traced run.
	TraceEvent = sim.TraceEvent
	// SquashHotspot is one row of the per-word squash-attribution table.
	SquashHotspot = sim.SquashHotspot
)

// Observability (the internal/obs layer): a deterministic, cycle-domain
// metrics registry and gauge sampler that attach to a Simulator via
// (*Simulator).Observe without perturbing results.
type (
	// ObsRegistry holds one run's counters, gauges and histograms.
	ObsRegistry = obs.Registry
	// ObsConfig threads a registry and sampling period into a Simulator
	// or an orchestrator Job.
	ObsConfig = obs.Config
	// ObsSeries is the sampled gauge time series of an observed run.
	ObsSeries = obs.Series
)

// NewObsRegistry returns an empty observability registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// SquashHotspots aggregates a trace's squash events into per-word hotspots.
func SquashHotspots(trace []TraceEvent) []SquashHotspot { return sim.SquashHotspots(trace) }

// Run simulates one (machine, scheme, application, seed) combination.
func Run(cfg *Machine, scheme Scheme, prof Profile, seed uint64) Result {
	return sim.Run(cfg, scheme, prof, seed)
}

// RunSequential measures the sequential-execution baseline for speedups.
func RunSequential(cfg *Machine, prof Profile, seed uint64) Result {
	return sim.RunSequential(cfg, prof, seed)
}

// RunParallel simulates one combination on the parallel simulation core
// with n worker goroutines (n <= 1 selects the serial loop). The Result is
// reflect.DeepEqual-identical to Run's: parallel mode only changes where
// the work is computed, never what it computes. See DESIGN.md §15.
func RunParallel(cfg *Machine, scheme Scheme, prof Profile, seed uint64, n int) Result {
	s := sim.New(cfg, scheme, workload.NewGenerator(prof, seed))
	s.SetParallel(n)
	return s.Run()
}

// NewSimulator builds a simulator for one run (e.g. to EnableTrace).
func NewSimulator(cfg *Machine, scheme Scheme, prof Profile, seed uint64) *Simulator {
	return sim.New(cfg, scheme, workload.NewGenerator(prof, seed))
}

// NewSimulatorFor builds a simulator over any workload — in particular an
// explicit Trace.
func NewSimulatorFor(cfg *Machine, scheme Scheme, w Workload) *Simulator {
	return sim.New(cfg, scheme, w)
}

// Orchestration (the internal/exp subsystem). Every experiment harness
// below executes through it; these aliases let callers build their own
// batches with the same machinery.
type (
	// Job is the canonical, hashable description of one simulation:
	// (machine, scheme, application profile, seed, ablation knobs).
	Job = exp.Job
	// JobResult pairs a Job with its outcome.
	JobResult = exp.JobResult
	// Ablation bundles the simulator's ablation knobs for Jobs.
	Ablation = exp.Ablation
	// Runner executes Job batches on a worker pool with panic isolation,
	// optional persistent caching, and run metrics.
	Runner = exp.Runner
	// RunMetrics accumulates orchestration metrics across batches.
	RunMetrics = exp.Metrics
	// MetricsSnapshot is a point-in-time view of RunMetrics.
	MetricsSnapshot = exp.Snapshot
	// Telemetry serves live campaign state over HTTP: Prometheus-text
	// /metrics and a JSON /progress view (the CLIs' -listen flag).
	Telemetry = exp.Telemetry
	// ResultCache is the persistent on-disk result cache.
	ResultCache = exp.Cache
	// JobFailure is one entry of a sweep's failure manifest.
	JobFailure = exp.Failure
)

// CollectFailures extracts the failure manifest from a batch's results.
func CollectFailures(results []JobResult) []JobFailure { return exp.CollectFailures(results) }

// RenderFailureManifest renders a failure manifest as a text block ("" when
// the sweep was clean).
func RenderFailureManifest(failures []JobFailure) string {
	return exp.RenderFailureManifest(failures)
}

// NewResultCache opens (creating if necessary) a persistent result cache
// rooted at dir. Entries are keyed by job content hash plus the module
// version, so a warm rerun only re-simulates what changed.
func NewResultCache(dir string) (*ResultCache, error) { return exp.NewCache(dir) }

// NewResultCacheFS is NewResultCache writing through an explicit filesystem
// seam (storage fault drills inject one; nil means the real OS).
func NewResultCacheFS(fsys iofault.FS, dir string) (*ResultCache, error) {
	return exp.NewCacheFS(fsys, dir)
}

// Crash-safe campaigns: the journal WAL, its replayed digest, and the
// graceful-shutdown controller behind the CLIs' -resume flags.
type (
	// Journal is the append-only, fsync'd campaign write-ahead log.
	Journal = exp.Journal
	// JournalRecord is one line of the campaign journal.
	JournalRecord = exp.JournalRecord
	// CampaignState is the resume-relevant digest of a journal: completed
	// jobs (results in the cache) and in-flight checkpoints.
	CampaignState = exp.CampaignState
	// Shutdown is the two-stage SIGINT/SIGTERM handler: first signal
	// cancels the campaign context (workers checkpoint and drain), second
	// hard-exits.
	Shutdown = exp.Shutdown
)

// Journal record types, and the exit code of a gracefully interrupted
// campaign (128 + SIGINT, the shell convention).
const (
	RecCampaign     = exp.RecCampaign
	RecJobStart     = exp.RecJobStart
	RecCheckpoint   = exp.RecCheckpoint
	RecJobDone      = exp.RecJobDone
	ExitInterrupted = exp.ExitInterrupted
	// ExitPowerCut is the exit code of a campaign killed by an injected
	// storage fault plan's power cut (-io-chaos cut=N).
	ExitPowerCut = exp.ExitPowerCut
)

// OpenJournal opens (creating if necessary) the campaign journal at path
// for appending, truncating a torn final line left by a crashed writer.
func OpenJournal(path string) (*Journal, error) { return exp.OpenJournal(path) }

// OpenJournalFS is OpenJournal writing through an explicit filesystem seam
// (storage fault drills inject one; nil means the real OS).
func OpenJournalFS(fsys iofault.FS, path string) (*Journal, error) {
	return exp.OpenJournalFS(fsys, path)
}

// LoadCampaign reads and replays the journal at path into the digest a
// resumed campaign needs (completed job keys, latest checkpoints).
func LoadCampaign(path string) (CampaignState, error) { return exp.LoadCampaign(path) }

// NewShutdown installs the two-stage signal handler. Call Stop when the
// campaign finishes to restore default signal behavior.
func NewShutdown(parent context.Context) *Shutdown { return exp.NewShutdown(parent) }

// RunBatch executes jobs on a default Runner (GOMAXPROCS workers, one panic
// retry, no cache). Results are returned in submission order; they are
// byte-identical to running each job serially.
func RunBatch(ctx context.Context, jobs []Job) ([]JobResult, error) {
	return new(Runner).RunBatch(ctx, jobs)
}

// Experiments (the tables and figures of the evaluation).
type (
	// Options parameterizes an experiment sweep.
	Options = report.Options
	// Grid is a machine × applications × schemes sweep.
	Grid = report.Grid
	// Cell is one (application, scheme) measurement.
	Cell = report.Cell
	// Summary is the Section 5.4 condensation of a grid.
	Summary = report.Summary
	// AppCharacterization is one application's measured characteristics
	// (Figure 1, Table 3).
	AppCharacterization = report.AppCharacterization
	// ExpectationCheck is a verified qualitative claim of the paper.
	ExpectationCheck = report.ExpectationCheck
	// ScalabilityPoint is one machine size of a scalability sweep.
	ScalabilityPoint = report.ScalabilityPoint
)

// Figure9 runs the NUMA separation/merging comparison (Figure 9).
func Figure9(opt Options) *Grid { return report.Figure9(opt) }

// Figure10 runs the NUMA AMM-versus-FMM comparison plus P3m's Lazy.L2 run.
func Figure10(opt Options) (*Grid, Cell) { return report.Figure10(opt) }

// Figure11 runs Figure 9 on the CMP.
func Figure11(opt Options) *Grid { return report.Figure11(opt) }

// Characterize measures Figure 1 / Table 3 data for the suite.
func Characterize(opt Options) []AppCharacterization { return report.Characterize(opt) }

// Summarize condenses a Figure 9/11 grid into Section 5.4's averages.
func Summarize(g *Grid) Summary { return report.Summarize(g) }

// Scalability sweeps machine sizes (4, 8, 16, 32 NUMA nodes) and reports
// how the benefits of multiple tasks&versions and laziness scale — the
// basis of the paper's "large machines" conclusions.
func Scalability(opt Options) []ScalabilityPoint { return report.Scalability(opt) }

// Figure5 renders the SingleT/MultiT&SV/MultiT&MV timelines of Figure 5.
func Figure5(w io.Writer, seed uint64) map[string]Result { return report.Figure5(w, seed) }

// Figure6 renders the execution/commit wavefront timelines of Figure 6.
func Figure6(w io.Writer, seed uint64) map[string]Result { return report.Figure6(w, seed) }
