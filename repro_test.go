package repro_test

import (
	"bytes"
	"context"
	"testing"

	"repro"
)

func TestPublicAPIQuickstart(t *testing.T) {
	prof, ok := repro.AppByName("Tree")
	if !ok {
		t.Fatal("Tree missing")
	}
	prof = prof.Scale(0.1, 0.1, 0.25)
	seq := repro.RunSequential(repro.NUMA16(), prof, 1)
	res := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, prof, 1)
	if res.Speedup(seq.ExecCycles) <= 1 {
		t.Fatalf("speedup = %f", res.Speedup(seq.ExecCycles))
	}
	if res.OracleViolations != 0 {
		t.Fatal("sequential semantics violated")
	}
}

func TestPublicTaxonomy(t *testing.T) {
	if len(repro.AllSchemes()) != 8 {
		t.Fatal("AllSchemes wrong")
	}
	if !repro.RequiredSupports(repro.MultiTMVLazy).Has(repro.Support(0)) { // CTID
		t.Fatal("supports not exposed")
	}
	if len(repro.UpgradePath()) != 4 || len(repro.ExistingSchemes()) < 12 {
		t.Fatal("taxonomy artifacts missing")
	}
	if repro.SingleTEager.Sep != repro.SingleT || repro.MultiTMVFMM.Merge != repro.FMM {
		t.Fatal("axis constants wrong")
	}
}

func TestPublicSuite(t *testing.T) {
	if len(repro.Apps()) != 7 || len(repro.StandardSuite()) != 7 {
		t.Fatal("suite wrong")
	}
	if repro.P3m().Name != "P3m" || repro.Euler().Name != "Euler" {
		t.Fatal("app constructors wrong")
	}
	if _, ok := repro.AppByName("nope"); ok {
		t.Fatal("unknown app found")
	}
}

func TestPublicMachines(t *testing.T) {
	if repro.NUMA16().Procs != 16 || repro.CMP8().Procs != 8 {
		t.Fatal("machine configs wrong")
	}
	if repro.NUMA16BigL2().L2.Ways != 16 {
		t.Fatal("Lazy.L2 variant wrong")
	}
}

func TestPublicTracing(t *testing.T) {
	prof := repro.Tree().Scale(0.05, 0.05, 0.25)
	s := repro.NewSimulator(repro.CMP8(), repro.SingleTEager, prof, 2)
	s.EnableTrace()
	r := s.Run()
	if len(r.Trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestPublicFigures5And6(t *testing.T) {
	var buf bytes.Buffer
	if res := repro.Figure5(&buf, 1); len(res) != 3 {
		t.Fatal("Figure5 wrong")
	}
	if res := repro.Figure6(&buf, 1); len(res) != 4 {
		t.Fatal("Figure6 wrong")
	}
	if buf.Len() == 0 {
		t.Fatal("no rendering")
	}
}

func TestPublicGridAndSummary(t *testing.T) {
	apps := []repro.Profile{repro.Track().Scale(0.1, 0.1, 0.25)}
	g := repro.Figure11(repro.Options{Apps: apps, Seed: 4})
	if len(g.Apps) != 1 {
		t.Fatal("grid wrong")
	}
	s := repro.Summarize(g)
	if s.Machine != "CMP8" {
		t.Fatal("summary wrong")
	}
	chars := repro.Characterize(repro.Options{Apps: apps, Seed: 4})
	if len(chars) != 1 || chars[0].FootprintKB <= 0 {
		t.Fatal("characterization wrong")
	}
}

func TestPublicBatchOrchestration(t *testing.T) {
	prof := repro.Tree().Scale(0.05, 0.05, 0.25)
	cfg := repro.CMP8()
	jobs := []repro.Job{
		{Machine: cfg, Profile: prof, Seed: 1, Sequential: true},
		{Machine: cfg, Scheme: repro.MultiTMVLazy, Profile: prof, Seed: 1},
	}
	results, err := repro.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("batch failed: %+v", results)
	}
	// Batch results must equal the single-run facade exactly.
	direct := repro.Run(cfg, repro.MultiTMVLazy, prof, 1)
	if results[1].Result.ExecCycles != direct.ExecCycles {
		t.Fatalf("batch %d cycles vs direct %d cycles",
			results[1].Result.ExecCycles, direct.ExecCycles)
	}
	seq := repro.RunSequential(cfg, prof, 1)
	if results[0].Result.ExecCycles != seq.ExecCycles {
		t.Fatal("sequential batch job differs from RunSequential")
	}
	if jobs[0].Key() == jobs[1].Key() || len(jobs[0].Key()) != 64 {
		t.Fatal("job keys wrong")
	}
}

func TestPublicCachedRunner(t *testing.T) {
	cache, err := repro.NewResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prof := repro.Tree().Scale(0.05, 0.05, 0.25)
	jobs := []repro.Job{{Machine: repro.CMP8(), Scheme: repro.SingleTEager, Profile: prof, Seed: 3}}
	m := new(repro.RunMetrics)
	r := &repro.Runner{Cache: cache, Metrics: m}
	if _, err := r.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	warm, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !warm[0].Cached {
		t.Fatal("second run must be a cache hit")
	}
	s := m.Snapshot()
	if s.Executed != 1 || s.CacheHits != 1 || s.Total != 2 {
		t.Fatalf("metrics: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty metrics line")
	}
}
