package repro_test

import (
	"testing"

	"repro"
	"repro/internal/report"
)

// TestPaperClaims is the reproduction gate: it runs the Figure 9 and
// Figure 10 grids at the standard suite scale and requires every
// qualitative claim of Sections 5.1–5.3 to hold. It takes a few minutes
// and is skipped under -short.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite reproduction gate; run without -short")
	}
	opt := repro.Options{Seed: 1}

	fig9 := repro.Figure9(opt)
	for _, c := range report.CheckFigure9Claims(fig9) {
		if !c.Holds {
			t.Errorf("Figure 9 claim failed: %s (%s)", c.Claim, c.Note)
		}
	}
	// Protocol correctness across the whole grid.
	for _, app := range fig9.Apps {
		for _, sch := range fig9.Schemes {
			r := fig9.Cell(app, sch).Result
			if r.OracleViolations != 0 {
				t.Errorf("%s/%v: %d committed reads observed the wrong version",
					app, sch, r.OracleViolations)
			}
			if r.Commits != r.Tasks {
				t.Errorf("%s/%v: lost tasks", app, sch)
			}
		}
	}

	fig10, lazyL2 := repro.Figure10(opt)
	for _, c := range report.CheckFigure10Claims(fig10, lazyL2) {
		if !c.Holds {
			t.Errorf("Figure 10 claim failed: %s (%s)", c.Claim, c.Note)
		}
	}

	// The Section 5.4 orderings that carry the conclusions.
	numa := repro.Summarize(fig9)
	if numa.MultiTMVOverSingleTPct < 10 {
		t.Errorf("NUMA MultiT&MV reduction %.1f%% too small (paper: 32%%)", numa.MultiTMVOverSingleTPct)
	}
	if numa.LazinessSimplePct < 10 {
		t.Errorf("NUMA laziness reduction %.1f%% too small (paper: 30%%)", numa.LazinessSimplePct)
	}
	if numa.LazinessMultiTMVPct < 8 {
		t.Errorf("NUMA laziness-on-MV reduction %.1f%% too small (paper: 24%%)", numa.LazinessMultiTMVPct)
	}

	cmp := repro.Summarize(repro.Figure11(opt))
	if cmp.MultiTMVOverSingleTPct < 12 {
		t.Errorf("CMP MultiT&MV reduction %.1f%% too small (paper: 23%%)", cmp.MultiTMVOverSingleTPct)
	}
	// Laziness must compress dramatically on the tightly-coupled machine.
	if cmp.LazinessSimplePct > numa.LazinessSimplePct/2 {
		t.Errorf("CMP laziness (%.1f%%) must be well below NUMA laziness (%.1f%%)",
			cmp.LazinessSimplePct, numa.LazinessSimplePct)
	}
	if cmp.LazinessMultiTMVPct > 5 {
		t.Errorf("CMP laziness-on-MV (%.1f%%) must be marginal (paper: 3%%)", cmp.LazinessMultiTMVPct)
	}
}
