// Taxonomy: print the paper's classification artifacts — the design-space
// grid (Figure 2-(a)), the support inventory (Table 1), the upgrade path
// (Table 2), the mapping of previously proposed schemes (Figure 4), and the
// per-scheme limiting application characteristics (Figure 8). No simulation
// runs: this is the analytical contribution of the paper as a data model.
package main

import (
	"os"

	"repro/internal/report"
)

func main() {
	report.RenderFigure2(os.Stdout)
	report.RenderTable1(os.Stdout)
	report.RenderTable2(os.Stdout)
	report.RenderFigure4(os.Stdout)
	report.RenderFigure8(os.Stdout)
}
