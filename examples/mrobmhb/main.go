// Mrobmhb: reproduce Figure 7 — how the same program fragment lands in the
// memory-system reorder buffer (AMM) versus the memory-system history
// buffer (FMM).
//
// Two tasks run on the same processor; both write variable X at 0x400
// (task i writes 2, task i+j writes 10, in the paper's example). Under AMM
// the cache ends up holding both speculative versions, tagged with their
// producer task IDs — the local slice of the distributed MROB. Under FMM
// the newest version takes X's place and the older version is saved in the
// MHB, tagged with both the producer and the overwriter, because the
// producer "cannot be deduced from the task that overwrites the version".
package main

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/memsys"
)

func main() {
	const x = memsys.Addr(0x400)
	taskI := ids.TaskID(4)  // "task i"
	taskIJ := ids.TaskID(7) // "task i+j"

	fmt.Println("Figure 7. Implementing the MROB and the MHB")
	fmt.Println()
	fmt.Printf("Task %v writes 2 to %v; task %v writes 10 to %v (same processor)\n\n",
		taskI, x, taskIJ, x)

	// (b) AMM: the cache is the local MROB — one line per version, tagged
	// with the producer task ID (CTID).
	cache := memsys.NewCache(memsys.Config{Name: "L2", SizeBytes: 4 * memsys.LineBytes, Ways: 4})
	cache.Insert(x.Line(), taskI, memsys.KindOwnVersion)
	cache.Insert(x.Line(), taskIJ, memsys.KindOwnVersion)

	fmt.Println("(b) AMM cache = local MROB:")
	fmt.Printf("    %-8s %-10s %-6s\n", "TaskID", "Tag", "Kind")
	cache.ForEach(func(l *memsys.Line) {
		fmt.Printf("    %-8v %-10v %-6v\n", l.Producer, l.Tag, l.Kind)
	})
	fmt.Println()

	// The CRL: an external read by a later task selects the highest
	// producer at or below the reader.
	for _, reader := range []ids.TaskID{5, 9} {
		best := cache.BestVersionFor(x.Line(), reader)
		fmt.Printf("    CRL: a read by %v receives %v's version\n", reader, best.Producer)
	}
	fmt.Println()

	// (c) FMM: the newest version takes X's place; the MHB saves the
	// overwritten version with producer AND overwriter IDs.
	fmmCache := memsys.NewCache(memsys.Config{Name: "L2", SizeBytes: 4 * memsys.LineBytes, Ways: 4})
	mhb := memsys.NewMHB()
	fmmCache.Insert(x.Line(), taskI, memsys.KindOwnVersion)
	// Task i+j overwrites: the most recent local version (task i's) is
	// saved in the MHB first.
	prev := fmmCache.BestVersionFor(x.Line(), taskIJ)
	mhb.Append(x.Line(), prev.Producer, taskIJ)
	fmmCache.Invalidate(x.Line(), taskI)
	fmmCache.Insert(x.Line(), taskIJ, memsys.KindOwnVersion)

	fmt.Println("(c) FMM cache (future state) + MHB:")
	fmt.Printf("    cache: %-8s %-10s\n", "TaskID", "Tag")
	fmmCache.ForEach(func(l *memsys.Line) {
		fmt.Printf("           %-8v %-10v\n", l.Producer, l.Tag)
	})
	fmt.Printf("    MHB:   %-10s %-10s %-10s\n", "Overwriter", "Producer", "Tag")
	undo := mhb.PopForRecovery(ids.TaskID(1)) // drain for display
	for _, e := range undo {
		fmt.Printf("           %-10v %-10v %-10v\n", e.Overwriter, e.Producer, e.Tag)
	}
	fmt.Println()
	fmt.Println("On a squash of task i+j, recovery copies task i's version back from")
	fmt.Println("the MHB to main memory — in strict reverse task order across the")
	fmt.Println("distributed MHBs. Under AMM, recovery just invalidates the squashed")
	fmt.Println("MROB entries.")
}
