// Scaling: how machine size changes the tradeoffs. The paper contrasts a
// 16-node CC-NUMA with an 8-processor CMP and concludes that laziness
// matters on large machines but barely on small tightly-coupled ones, and
// that on large machines the benefits of multiple tasks&versions and of
// laziness are nearly fully additive. This demo sweeps the CC-NUMA from 4
// to 32 processors and also sweeps the task chunk size on one application
// (the knob the evaluation fixed per application: 1-32 consecutive
// iterations per task).
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	fmt.Println("Sweeping CC-NUMA machine size (suite minus P3m, standard scaling)...")
	fmt.Println()
	points := repro.Scalability(repro.Options{Seed: 1})
	report.RenderScalability(os.Stdout, points)
	last := points[len(points)-1]
	total := 100 * (1 - last.MultiTMVL)
	fmt.Printf("additivity at %d processors: MV alone %.1f%%, laziness on top %.1f%%, together %.1f%%\n\n",
		last.Procs, last.MultiTMVPct, last.LazinessMVPct, total)

	fmt.Println("Sweeping the iteration chunk size (Euler, MultiT&MV Lazy, NUMA16):")
	fmt.Printf("  %-8s %-8s %-10s %-9s %-8s\n", "chunk", "tasks", "cycles", "speedup", "squashes")
	base := repro.Euler().Scale(0.5, 0.25, 0.25)
	seq := repro.RunSequential(repro.NUMA16(), base, 1)
	for _, f := range []float64{0.5, 1, 2, 4} {
		p := base.Rechunk(f)
		r := repro.Run(repro.NUMA16(), repro.MultiTMVLazy, p, 1)
		fmt.Printf("  %-8.1f %-8d %-10d %-9.2f %-8d\n",
			f, p.Tasks, r.ExecCycles, r.Speedup(seq.ExecCycles), r.SquashEvents)
	}
	fmt.Println("\nBigger chunks amortize dispatch and commit overheads but deepen the")
	fmt.Println("damage of each squash and worsen load balance.")
}
