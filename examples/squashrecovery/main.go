// Squashrecovery: Euler's tradeoff. FMM merges versions with main memory at
// any time, so commits are free — but recovery from a dependence violation
// must walk the distributed undo log (MHB) and copy every overwritten
// version back to memory in reverse task order. Lazy AMM recovers by
// gang-invalidating the speculative lines of the squashed tasks. With
// frequent squashes, AMM wins; without them, FMM's free commits win.
// This demo sweeps the cross-task dependence intensity and shows the
// crossover (Section 3.3.4 and the Euler column of Figure 10).
package main

import (
	"fmt"

	"repro"
)

func main() {
	mach := repro.NUMA16()
	base := repro.Euler().Scale(0.25, 0.1, 0.25)
	seq := repro.RunSequential(mach, base, 1)

	fmt.Printf("Euler-like loop on %s (sequential: %d cycles)\n\n", mach.Name, seq.ExecCycles)
	fmt.Printf("%-8s | %-30s | %-30s\n", "dep", "MultiT&MV Lazy AMM", "MultiT&MV FMM")
	fmt.Printf("%-8s | %-10s %-8s %-9s | %-10s %-8s %-9s\n",
		"prob", "cycles", "squash", "recovery", "cycles", "squash", "recovery")
	for _, dep := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		p := base
		p.DepProb = dep
		if dep > 0 && p.DepReach == 0 {
			p.DepReach = 12
		}
		lazy := repro.Run(mach, repro.MultiTMVLazy, p, 1)
		fmm := repro.Run(mach, repro.MultiTMVFMM, p, 1)
		fmt.Printf("%-8.2f | %-10d %-8d %-9d | %-10d %-8d %-9d\n",
			dep, lazy.ExecCycles, lazy.SquashEvents, lazy.Agg.StallRecovery,
			fmm.ExecCycles, fmm.SquashEvents, fmm.Agg.StallRecovery)
	}

	fmt.Println("\nat the application's own dependence intensity:")
	for _, scheme := range []repro.Scheme{repro.MultiTMVLazy, repro.MultiTMVFMM, repro.MultiTMVFMMSw} {
		r := repro.Run(mach, scheme, base, 1)
		fmt.Printf("  %-22s %8d cycles  speedup %5.2fx  MHB: %d appends, %d restored\n",
			scheme, r.ExecCycles, r.Speedup(seq.ExecCycles), r.MHBAppends, r.MHBRestored)
	}
}
