// Customtrace: run YOUR access pattern through the buffering schemes. The
// synthetic application models cover the paper's workloads; an explicit
// Trace lets you hand the simulator any per-task operation stream.
//
// The pattern here is a wavefront stencil: task i updates row i of a grid
// reading row i-1 — a true loop-carried dependence from each task to the
// next. Because each task publishes its row late and the next task reads
// it early, speculation squashes constantly: the worst case for
// speculative buffering and a pattern none of the paper's applications
// have. Compare how the schemes cope.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		tasks    = 48
		rowWords = 32
		rowBase  = repro.Addr(1 << 20)
	)
	var streams [][]repro.Op
	for i := 0; i < tasks; i++ {
		var b repro.TraceBuilder
		b.Compute(800)
		// Read the previous task's row (the loop-carried dependence).
		if i > 0 {
			for w := 0; w < rowWords; w += 4 {
				b.Read(rowBase + repro.Addr((i-1)*rowWords+w))
			}
		}
		b.Compute(2400)
		// Publish this task's row.
		for w := 0; w < rowWords; w++ {
			b.Write(rowBase + repro.Addr(i*rowWords+w))
		}
		b.Compute(400)
		streams = append(streams, b.Ops())
	}
	trace := repro.NewTrace("stencil", streams, 0)

	mach := repro.NUMA16()
	fmt.Println("Wavefront stencil (every task depends on its predecessor) on NUMA16:")
	fmt.Printf("  %-22s %-10s %-9s %-10s\n", "scheme", "cycles", "squashes", "recovery")
	for _, scheme := range []repro.Scheme{
		repro.SingleTEager, repro.MultiTMVEager, repro.MultiTMVLazy, repro.MultiTMVFMM,
	} {
		s := repro.NewSimulatorFor(mach, scheme, trace)
		r := s.Run()
		fmt.Printf("  %-22s %-10d %-9d %-10d\n",
			scheme, r.ExecCycles, r.TasksSquashed, r.Agg.StallRecovery)
	}
	fmt.Println()
	fmt.Println("A fully serial dependence chain defeats speculation: the MultiT schemes")
	fmt.Println("squash nearly every task at least once, and FMM pays its slow log-walk")
	fmt.Println("recovery on each one. SingleT simply serializes. This is the regime")
	fmt.Println("where run-time parallelization should not be attempted at all.")
}
