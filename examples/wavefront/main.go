// Wavefront: reproduce the concept figures. Figure 5 shows four imbalanced
// tasks on two processors under SingleT (the processor that finishes a
// short speculative task stalls), MultiT&SV (it starts the next task but
// stalls at the first second-version write), and MultiT&MV (it never
// stalls). Figure 6 shows the execution and commit wavefronts: under Eager
// AMM the serialized merges trail execution (and SingleT puts them on the
// critical path); under Lazy AMM the token flies and the wavefront
// disappears.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	repro.Figure5(os.Stdout, 1)
	fmt.Println()
	repro.Figure6(os.Stdout, 1)
}
