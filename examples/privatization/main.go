// Privatization: the Apsi pattern of Figure 1-(b). Each task generates its
// own work(k) elements before reading them, but the compiler cannot prove
// work privatizable — so under speculation every task creates a new version
// of the same variables. This demo shows what that does to each level of
// task-state separation:
//
//   - MultiT&SV stalls the moment a task would create a second local
//     version (degenerating to SingleT or worse, since the privatized
//     variables are written early in the task);
//   - MultiT&MV buffers multiple versions of the same variable per
//     processor and sails through;
//   - sweeping the privatization weight shows the crossover.
package main

import (
	"fmt"

	"repro"
)

func main() {
	mach := repro.NUMA16()
	base := repro.Apsi().Scale(0.25, 0.1, 0.25)
	seq := repro.RunSequential(mach, base, 1)

	fmt.Printf("Apsi-like loop on %s (sequential: %d cycles)\n\n", mach.Name, seq.ExecCycles)
	fmt.Println("scheme comparison at the application's privatization weight:")
	for _, scheme := range []repro.Scheme{
		repro.SingleTEager, repro.MultiTSVEager, repro.MultiTMVEager,
	} {
		r := repro.Run(mach, scheme, base, 1)
		tot := float64(r.Agg.Total())
		fmt.Printf("  %-22s %8d cycles  speedup %5.2fx  task/version stall %4.1f%%\n",
			scheme, r.ExecCycles, r.Speedup(seq.ExecCycles), 100*float64(r.Agg.StallTask)/tot)
	}

	fmt.Println("\nsweeping the fraction of the footprint with mostly-privatization behaviour:")
	fmt.Printf("  %-6s %-24s %-24s\n", "priv", "MultiT&SV Eager", "MultiT&MV Eager")
	for _, priv := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		p := base
		p.PrivFrac = priv
		sv := repro.Run(mach, repro.MultiTSVEager, p, 1)
		mv := repro.Run(mach, repro.MultiTMVEager, p, 1)
		fmt.Printf("  %-6.2f %8d cycles (%4.2fx) %8d cycles (%4.2fx)\n",
			priv, sv.ExecCycles, sv.Speedup(seq.ExecCycles),
			mv.ExecCycles, mv.Speedup(seq.ExecCycles))
	}
	fmt.Println("\nMultiT&SV needs only CTID; tolerating privatization needs CRL too (Table 2).")
}
