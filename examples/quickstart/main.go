// Quickstart: simulate one speculatively-parallelized loop under two
// buffering schemes and compare them against sequential execution.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Bdna's non-analyzable loop (actfor do240), scaled down for a fast run.
	prof := repro.Bdna().Scale(0.25, 0.1, 0.25)
	mach := repro.NUMA16()

	seq := repro.RunSequential(mach, prof, 1)
	fmt.Printf("%s on %s: sequential execution takes %d cycles\n\n",
		prof.Name, mach.Name, seq.ExecCycles)

	for _, scheme := range []repro.Scheme{repro.SingleTEager, repro.MultiTMVLazy} {
		r := repro.Run(mach, scheme, prof, 1)
		fmt.Printf("%-22s %8d cycles  speedup %5.2fx  busy %4.1f%%  commit/exec %.1f%%\n",
			scheme, r.ExecCycles, r.Speedup(seq.ExecCycles),
			100*r.Agg.BusyFraction(), r.CommitExecRatio())
	}

	fmt.Println("\nSupports each scheme needs beyond plain caches (Table 2):")
	for _, scheme := range []repro.Scheme{repro.SingleTEager, repro.MultiTMVLazy} {
		fmt.Printf("  %-22s %v\n", scheme, repro.RequiredSupports(scheme).List())
	}
}
