#!/bin/sh
# Network-chaos drill for `make cluster-chaos`: run a figure grid on a
# loopback fleet whose every link misbehaves — the coordinator's listener
# delays and refuses connections (partition windows), both healthy workers
# speak through hostile transports (drops, delays, duplicates, reordering,
# truncation, corruption), a third worker is fully byzantine (every request
# body corrupted), and one healthy worker is SIGKILL'd mid-campaign. The
# fleet-rendered report must still be byte-identical to a serial tlsreport
# run, and the byzantine worker must end up circuit-broken.
#
# Every fault plan is seeded (CHAOS_SEED, default 7): the same seed arms the
# identical fault schedule on every run. The armed plans are recorded in
# $dir/chaos.plan for CI artifact upload.
set -eu

GO="${GO:-go}"
dir="${CLUSTER_CHAOS_DIR:-cluster-chaos}"
port="${CLUSTER_CHAOS_PORT:-8173}"
seed="${CHAOS_SEED:-7}"
url="http://127.0.0.1:$port"
report_args="-only fig9 -apps Tree,Euler,Track,Bdna -seed 3"
# Short lease TTL so killed/flapping workers' leases requeue quickly, and a
# short quarantine so breaker probation cycles happen within the drill.
serve_args="-lease-ttl 2s -steal-after 1s -straggler 0 -quarantine-for 2s"

rm -rf "$dir"
mkdir -p "$dir"
"$GO" build -o "$dir/tlsreport" ./cmd/tlsreport
"$GO" build -o "$dir/tlsserve" ./cmd/tlsserve
"$GO" build -o "$dir/tlsworker" ./cmd/tlsworker

echo "cluster-chaos: serial baseline"
"$dir/tlsreport" $report_args -jobs 1 >"$dir/serial.out" 2>"$dir/serial.err"

echo "cluster-chaos: starting chaos coordinator on $url (seed $seed)"
"$dir/tlsserve" -listen "127.0.0.1:$port" -cache "$dir/cache" \
	-journal "$dir/fleet.wal" $serve_args \
	-chaos-net hostile -chaos-seed "$seed" \
	>"$dir/serve.out" 2>"$dir/serve.err" &
serve_pid=$!
i=0
until grep -q "listening on" "$dir/serve.out" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cluster-chaos: coordinator never came up" >&2
		cat "$dir/serve.err" >&2
		exit 1
	fi
	sleep 0.1
done

echo "cluster-chaos: two hostile workers and one byzantine worker"
"$dir/tlsworker" -coordinator "$url" -name w1 -poll 100ms -observe \
	-chaos-net hostile -chaos-seed $((seed + 1)) \
	>"$dir/w1.out" 2>"$dir/w1.err" &
w1_pid=$!
"$dir/tlsworker" -coordinator "$url" -name w2 -poll 100ms \
	-chaos-net hostile -chaos-seed $((seed + 2)) \
	>"$dir/w2.out" 2>"$dir/w2.err" &
w2_pid=$!
# -jobs 3 keeps the byzantine lease pull's max field multi-valued; a corrupted
# "max":1 would read back as 0 and the worker would never lease anything.
"$dir/tlsworker" -coordinator "$url" -name byz -poll 100ms -jobs 3 \
	-chaos-net byzantine -chaos-seed $((seed + 3)) \
	>"$dir/byz.out" 2>"$dir/byz.err" &
byz_pid=$!

"$dir/tlsreport" $report_args -coordinator "$url" \
	>"$dir/fleet.out" 2>"$dir/fleet.err" &
client_pid=$!

sleep 1.5
echo "cluster-chaos: SIGKILL worker w2"
kill -9 "$w2_pid" 2>/dev/null ||
	echo "cluster-chaos: w2 already gone; campaign may have outrun the drill"
wait "$w2_pid" 2>/dev/null || true

# Bounded wait: a wedged fleet fails the drill instead of hanging CI.
i=0
while kill -0 "$client_pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 1800 ]; then
		echo "cluster-chaos: fleet campaign did not finish within 180s" >&2
		kill -9 "$client_pid" "$w1_pid" "$byz_pid" "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
status=0
wait "$client_pid" || status=$?
if [ "$status" -ne 0 ]; then
	echo "cluster-chaos: fleet client exited $status" >&2
	cat "$dir/fleet.err" >&2
	kill "$w1_pid" "$byz_pid" "$serve_pid" 2>/dev/null || true
	exit 1
fi

# Drain the survivors and stop the coordinator.
kill -TERM "$w1_pid" "$byz_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
wait "$byz_pid" 2>/dev/null || true
kill -TERM "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Record the armed fault plans (seed -> schedule) for the CI artifact: the
# same seeds re-arm the identical schedules on a replay.
{
	echo "chaos-seed: $seed"
	grep -h "chaos-net armed" "$dir/serve.err" "$dir/w1.err" "$dir/w2.err" "$dir/byz.err" 2>/dev/null || true
} >"$dir/chaos.plan"

if ! grep -q "quarantined by coordinator" "$dir/byz.err"; then
	echo "cluster-chaos: byzantine worker was never circuit-broken" >&2
	cat "$dir/byz.err" >&2
	exit 1
fi

if ! diff "$dir/fleet.out" "$dir/serial.out"; then
	echo "cluster-chaos: fleet report differs from the serial run" >&2
	exit 1
fi
echo "cluster-chaos: fleet report byte-identical to serial run through network chaos, a byzantine worker, and a worker kill"
