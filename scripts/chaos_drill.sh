#!/bin/sh
# Interrupt-resume drill for `make chaos`: SIGINT a journaled tlschaos
# campaign at a random point, resume it from the journal, and require the
# resumed report to be byte-identical to an uninterrupted run's. Artifacts
# (journal, checkpoints, reports) land in $CHAOS_DRILL_DIR for CI upload on
# failure.
set -eu

GO="${GO:-go}"
dir="${CHAOS_DRILL_DIR:-chaos-drill}"
args="-seeds 12 -jobs 2 -checkpoint-every 20"

rm -rf "$dir"
mkdir -p "$dir"
"$GO" build -o "$dir/tlschaos" ./cmd/tlschaos

echo "chaos-drill: campaign with journal, interrupting at a random point"
"$dir/tlschaos" $args -journal "$dir/journal.jsonl" -record "$dir/failures.json" \
	>"$dir/interrupted.out" 2>"$dir/interrupted.err" &
pid=$!
delay=$(awk 'BEGIN{srand(); printf "%.1f", 0.5 + rand() * 2.5}')
sleep "$delay"
if kill -INT "$pid" 2>/dev/null; then
	status=0
	wait "$pid" || status=$?
	if [ "$status" -eq 0 ]; then
		echo "chaos-drill: campaign finished before the interrupt (delay ${delay}s); drill degenerates to a rerun diff"
	elif [ "$status" -ne 130 ]; then
		echo "chaos-drill: interrupted campaign exited $status, want 130" >&2
		cat "$dir/interrupted.err" >&2
		exit 1
	else
		echo "chaos-drill: interrupted after ${delay}s (exit 130), resuming"
	fi
else
	# The campaign finished before the signal fired.
	wait "$pid" || { cat "$dir/interrupted.err" >&2; exit 1; }
	echo "chaos-drill: campaign finished before the interrupt (delay ${delay}s); drill degenerates to a rerun diff"
fi

"$dir/tlschaos" $args -resume "$dir/journal.jsonl" -record "$dir/failures.json" \
	>"$dir/resumed.out" 2>"$dir/resumed.err"

"$dir/tlschaos" $args -record "$dir/failures.json" \
	>"$dir/clean.out" 2>"$dir/clean.err"

if ! diff "$dir/resumed.out" "$dir/clean.out"; then
	echo "chaos-drill: resumed report differs from uninterrupted run" >&2
	exit 1
fi
echo "chaos-drill: resumed report byte-identical to uninterrupted run"
