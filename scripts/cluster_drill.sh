#!/bin/sh
# Fleet fault drill for `make cluster`: run a figure grid on a loopback
# fleet (tlsserve + two tlsworkers + a tlsreport client), SIGKILL one worker
# and then the coordinator mid-campaign, resume the coordinator from the
# WAL, and require the fleet-rendered report to be byte-identical to a
# serial tlsreport run's. Artifacts land in $CLUSTER_DRILL_DIR for CI
# upload on failure.
set -eu

GO="${GO:-go}"
dir="${CLUSTER_DRILL_DIR:-cluster-drill}"
port="${CLUSTER_DRILL_PORT:-8163}"
url="http://127.0.0.1:$port"
# ~5s of serial simulation: enough runway for both kills to land mid-flight.
report_args="-only fig9 -apps Tree,Euler,Track,Bdna -seed 3"
# Short lease TTL so the killed worker's leases requeue within the drill.
serve_args="-lease-ttl 2s -steal-after 1s -straggler 0"

rm -rf "$dir"
mkdir -p "$dir"
"$GO" build -o "$dir/tlsreport" ./cmd/tlsreport
"$GO" build -o "$dir/tlsserve" ./cmd/tlsserve
"$GO" build -o "$dir/tlsworker" ./cmd/tlsworker

echo "cluster-drill: serial baseline"
"$dir/tlsreport" $report_args -jobs 1 >"$dir/serial.out" 2>"$dir/serial.err"

echo "cluster-drill: starting coordinator on $url and two workers"
"$dir/tlsserve" -listen "127.0.0.1:$port" -cache "$dir/cache" \
	-journal "$dir/fleet.wal" $serve_args \
	>"$dir/serve1.out" 2>"$dir/serve1.err" &
serve_pid=$!
i=0
until grep -q "listening on" "$dir/serve1.out" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cluster-drill: coordinator never came up" >&2
		cat "$dir/serve1.err" >&2
		exit 1
	fi
	sleep 0.1
done

"$dir/tlsworker" -coordinator "$url" -name w1 -poll 100ms -observe \
	>"$dir/w1.out" 2>"$dir/w1.err" &
w1_pid=$!
"$dir/tlsworker" -coordinator "$url" -name w2 -poll 100ms \
	>"$dir/w2.out" 2>"$dir/w2.err" &
w2_pid=$!

"$dir/tlsreport" $report_args -coordinator "$url" \
	>"$dir/fleet.out" 2>"$dir/fleet.err" &
client_pid=$!

sleep 0.8
echo "cluster-drill: SIGKILL worker w2"
kill -9 "$w2_pid" 2>/dev/null ||
	echo "cluster-drill: w2 already gone; drill degenerates to a coordinator-crash run"
wait "$w2_pid" 2>/dev/null || true

sleep 0.8
echo "cluster-drill: SIGKILL coordinator"
kill -9 "$serve_pid" 2>/dev/null ||
	echo "cluster-drill: coordinator already gone (campaign may have outrun the drill)"
wait "$serve_pid" 2>/dev/null || true
sleep 0.3

echo "cluster-drill: resuming coordinator from the WAL"
"$dir/tlsserve" -listen "127.0.0.1:$port" -cache "$dir/cache" \
	-resume "$dir/fleet.wal" $serve_args \
	>"$dir/serve2.out" 2>"$dir/serve2.err" &
serve2_pid=$!

# The client re-submits pending keys on its own once the coordinator is
# back; bound the wait so a wedged fleet fails the drill instead of
# hanging CI.
i=0
while kill -0 "$client_pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 1200 ]; then
		echo "cluster-drill: fleet campaign did not finish within 120s" >&2
		kill -9 "$client_pid" "$w1_pid" "$serve2_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
status=0
wait "$client_pid" || status=$?
if [ "$status" -ne 0 ]; then
	echo "cluster-drill: fleet client exited $status" >&2
	cat "$dir/fleet.err" >&2
	kill "$w1_pid" "$serve2_pid" 2>/dev/null || true
	exit 1
fi

# Drain the surviving worker (SIGTERM: finish nothing new, release leases,
# exit 130) and stop the resumed coordinator.
kill -TERM "$w1_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
kill -TERM "$serve2_pid" 2>/dev/null || true
wait "$serve2_pid" 2>/dev/null || true

if ! grep -q "resuming" "$dir/serve2.err"; then
	echo "cluster-drill: resumed coordinator did not report WAL state" >&2
	cat "$dir/serve2.err" >&2
	exit 1
fi

if ! diff "$dir/fleet.out" "$dir/serial.out"; then
	echo "cluster-drill: fleet report differs from the serial run" >&2
	exit 1
fi
echo "cluster-drill: fleet report byte-identical to serial run through a worker kill and a coordinator kill+resume"
