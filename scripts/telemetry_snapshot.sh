#!/bin/sh
# Telemetry snapshot for CI: run a small sweep with the -listen endpoint
# enabled and capture /metrics (Prometheus text) and /progress (JSON) while
# the worker pool drains. The snapshots land in $1 (default
# telemetry-snapshot/) for artifact upload.
set -eu

GO="${GO:-go}"
out="${1:-telemetry-snapshot}"
port="${TLS_TELEMETRY_PORT:-18230}"

rm -rf "$out"
mkdir -p "$out"
"$GO" build -o "$out/tlssweep" ./cmd/tlssweep

"$out/tlssweep" -app Euler -param depprob -values 0,0.05,0.1,0.2 \
	-listen "127.0.0.1:$port" \
	>"$out/sweep.csv" 2>"$out/sweep.err" &
pid=$!

# Scrape as soon as the listener answers; keep the last complete pair
# (scrapes race campaign exit, so stage to temp files and promote only on
# success — a half-written scrape must not clobber a good one).
got=""
i=0
while [ "$i" -lt 100 ]; do
	if curl -fsS "http://127.0.0.1:$port/metrics" >"$out/.metrics.tmp" 2>/dev/null &&
		curl -fsS "http://127.0.0.1:$port/progress" >"$out/.progress.tmp" 2>/dev/null; then
		mv "$out/.metrics.tmp" "$out/metrics.txt"
		mv "$out/.progress.tmp" "$out/progress.json"
		got=1
	fi
	kill -0 "$pid" 2>/dev/null || break
	sleep 0.1
	i=$((i + 1))
done
rm -f "$out/.metrics.tmp" "$out/.progress.tmp"

status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
	echo "telemetry_snapshot: sweep failed ($status)" >&2
	cat "$out/sweep.err" >&2
	exit "$status"
fi
if [ -z "$got" ]; then
	echo "telemetry_snapshot: endpoint never answered" >&2
	cat "$out/sweep.err" >&2
	exit 1
fi
grep -q '^tls_jobs_total' "$out/metrics.txt" || {
	echo "telemetry_snapshot: /metrics is missing tls_jobs_total" >&2
	exit 1
}
grep -q '"campaign"' "$out/progress.json" || {
	echo "telemetry_snapshot: /progress is missing the campaign field" >&2
	exit 1
}
echo "telemetry_snapshot: wrote $out/metrics.txt and $out/progress.json"
