#!/bin/sh
# Storage-fault drill for `make fsck-drill`: run a journaled, cached tlssweep
# campaign under an injected fault plan whose power cut kills the process
# mid-campaign, verify and repair the surviving state with tlsfsck, resume
# the campaign, and require the resumed CSV to be byte-identical to a clean
# uninterrupted run's. Artifacts (fault plan, fsck reports, journals, CSVs)
# land in $FSCK_DRILL_DIR for CI upload.
set -eu

GO="${GO:-go}"
dir="${FSCK_DRILL_DIR:-fsck-drill}"
# Zero fault probabilities before the cut: the campaign runs exactly like a
# clean one until the power dies, so resume-vs-clean must match bytewise.
plan="${FSCK_DRILL_PLAN:-seed=7,cut=25,cutmode=torn}"
args='-app Euler -param depprob -values 0,0.1 -tasks 0.1 -instr 0.05 -jobs 2 -checkpoint-every 10'

rm -rf "$dir"
mkdir -p "$dir/state"
"$GO" build -o "$dir/tlssweep" ./cmd/tlssweep
"$GO" build -o "$dir/tlsfsck" ./cmd/tlsfsck

echo "fsck-drill: clean uninterrupted run (golden)"
"$dir/tlssweep" $args >"$dir/clean.csv" 2>"$dir/clean.err"

echo "fsck-drill: campaign under fault plan '$plan'"
echo "$plan" >"$dir/fault-plan.txt"
status=0
"$dir/tlssweep" $args \
	-io-chaos "$plan" \
	-journal "$dir/state/journal.jsonl" \
	-cache "$dir/state/cache" \
	-checkpoint-dir "$dir/state/ckpt" \
	>"$dir/faulted.csv" 2>"$dir/faulted.err" || status=$?
if [ "$status" -eq 0 ]; then
	echo "fsck-drill: campaign outran the power cut; drill degenerates to a verify + rerun diff"
elif [ "$status" -ne 3 ]; then
	echo "fsck-drill: faulted campaign exited $status, want 3 (power cut)" >&2
	cat "$dir/faulted.err" >&2
	exit 1
else
	echo "fsck-drill: power cut fired (exit 3); state left as the cut left it"
fi

echo "fsck-drill: verifying crashed state"
fsck_status=0
"$dir/tlsfsck" -state "$dir/state" -json >"$dir/fsck-verify.json" || fsck_status=$?
if [ "$fsck_status" -gt 1 ]; then
	echo "fsck-drill: tlsfsck verify failed (exit $fsck_status)" >&2
	exit 1
fi
echo "fsck-drill: verify exit $fsck_status; repairing"
repair_status=0
"$dir/tlsfsck" -state "$dir/state" -repair -json >"$dir/fsck-repair.json" || repair_status=$?
if [ "$repair_status" -gt 1 ]; then
	echo "fsck-drill: tlsfsck repair failed (exit $repair_status)" >&2
	exit 1
fi

echo "fsck-drill: state must verify clean after repair"
if ! "$dir/tlsfsck" -state "$dir/state" -json >"$dir/fsck-clean.json"; then
	echo "fsck-drill: state still dirty after repair" >&2
	cat "$dir/fsck-clean.json" >&2
	exit 1
fi

echo "fsck-drill: resuming the campaign from the repaired state"
"$dir/tlssweep" $args \
	-resume "$dir/state/journal.jsonl" \
	-cache "$dir/state/cache" \
	-checkpoint-dir "$dir/state/ckpt" \
	>"$dir/resumed.csv" 2>"$dir/resumed.err"

if ! diff "$dir/resumed.csv" "$dir/clean.csv"; then
	echo "fsck-drill: resumed CSV differs from clean run" >&2
	exit 1
fi
echo "fsck-drill: resumed CSV byte-identical to clean run"
