#!/bin/sh
# Fleet tracing drill for `make fleet-trace`: run a small figure grid on a
# traced loopback fleet (tlsserve -trace + two tlsworker -trace), require
# the coordinator to write one merged Perfetto trace that tlstrace
# -validate accepts with multiple processes and lease->attempt->complete
# flow arrows, snapshot the coordinator's phase-latency histograms from
# /metrics, and keep the structured logs as artifacts. A final
# panic-injection step asserts the always-on flight recorder dumps the last
# spans into the quarantine manifest. Artifacts land in $FLEET_TRACE_DIR
# for CI upload.
set -eu

GO="${GO:-go}"
dir="${FLEET_TRACE_DIR:-fleet-trace}"
port="${FLEET_TRACE_PORT:-8173}"
url="http://127.0.0.1:$port"
report_args="-only fig9 -apps Tree,Euler -seed 3"

rm -rf "$dir"
mkdir -p "$dir"
"$GO" build -o "$dir/tlsreport" ./cmd/tlsreport
"$GO" build -o "$dir/tlsserve" ./cmd/tlsserve
"$GO" build -o "$dir/tlsworker" ./cmd/tlsworker
"$GO" build -o "$dir/tlstrace" ./cmd/tlstrace

echo "fleet-trace: starting traced coordinator on $url and two traced workers"
"$dir/tlsserve" -listen "127.0.0.1:$port" -cache "$dir/cache" \
	-journal "$dir/fleet.wal" -trace "$dir/fleet.trace.json" \
	-exit-when-done \
	>"$dir/serve.out" 2>"$dir/serve.err" &
serve_pid=$!
i=0
until grep -q "listening on" "$dir/serve.out" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "fleet-trace: coordinator never came up" >&2
		cat "$dir/serve.err" >&2
		exit 1
	fi
	sleep 0.1
done

"$dir/tlsworker" -coordinator "$url" -name tw1 -poll 100ms -trace -observe \
	>"$dir/w1.out" 2>"$dir/w1.err" &
w1_pid=$!
"$dir/tlsworker" -coordinator "$url" -name tw2 -poll 100ms -trace \
	>"$dir/w2.out" 2>"$dir/w2.err" &
w2_pid=$!

# Snapshot the phase-latency histograms mid-campaign (retried until the
# campaign has produced completions, so the buckets are populated).
( i=0
  while [ "$i" -lt 300 ]; do
	i=$((i + 1))
	if curl -sf "$url/metrics" >"$dir/metrics.txt" 2>/dev/null &&
		grep -q "tls_fleet_attempt_wall_ms" "$dir/metrics.txt"; then
		exit 0
	fi
	sleep 0.1
  done ) &
metrics_pid=$!

"$dir/tlsreport" $report_args -coordinator "$url" \
	>"$dir/fleet.out" 2>"$dir/fleet.err"

# -exit-when-done: the coordinator writes the merged trace and exits once
# every job has an outcome.
i=0
while kill -0 "$serve_pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		echo "fleet-trace: coordinator did not exit after campaign completion" >&2
		kill -9 "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
wait "$serve_pid" 2>/dev/null || true
wait "$metrics_pid" 2>/dev/null || true
kill -TERM "$w1_pid" "$w2_pid" 2>/dev/null || true
wait "$w1_pid" "$w2_pid" 2>/dev/null || true

if [ ! -s "$dir/fleet.trace.json" ]; then
	echo "fleet-trace: coordinator wrote no fleet trace" >&2
	cat "$dir/serve.err" >&2
	exit 1
fi

echo "fleet-trace: validating the merged fleet trace"
"$dir/tlstrace" -validate "$dir/fleet.trace.json" | tee "$dir/validate.txt"
# The merged trace must span multiple processes (coordinator + workers)
# and carry flow arrows; tlstrace prints "N processes" and "N flows".
if grep -Eq "\(1 processes," "$dir/validate.txt"; then
	echo "fleet-trace: merged trace has only one process lane" >&2
	exit 1
fi
if grep -Eq " 0 flows," "$dir/validate.txt"; then
	echo "fleet-trace: merged trace has no lease->attempt->complete flows" >&2
	exit 1
fi

if [ -s "$dir/metrics.txt" ] &&
	grep -q "tls_fleet_queue_wait_ms" "$dir/metrics.txt"; then
	echo "fleet-trace: phase-latency histograms captured from /metrics"
else
	echo "fleet-trace: warning: /metrics snapshot missed the campaign window" >&2
fi

# Structured-log sanity: the fleet CLIs log via slog with component and
# campaign correlation attributes.
if ! grep -q "component=tlsserve" "$dir/serve.err"; then
	echo "fleet-trace: coordinator logs are not structured" >&2
	exit 1
fi
if ! grep -q "component=tlsworker" "$dir/w1.err"; then
	echo "fleet-trace: worker logs are not structured" >&2
	exit 1
fi

echo "fleet-trace: panic-injection: flight recorder must land in the quarantine manifest"
"$GO" test ./internal/exp/ -run "TestFlightRecorderDumpOnPanic|TestQuarantineManifestOnlyOnFirst" -count=1

echo "fleet-trace: merged fleet trace validated; open $dir/fleet.trace.json at ui.perfetto.dev"
